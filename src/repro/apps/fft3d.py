"""3-D FFT (NAS FT kernel): spectral PDE solver with transposes.

The array is distributed along its first dimension; the first two 1-D FFT
passes are local, then "the resulting array is transposed" so the third
pass becomes local too.  "The processors communicate with each other at
the transpose because each processor accesses a different set of elements
afterwards."

* **TreadMarks**: each processor writes its slab's columns *transposed*
  into the shared destination array -- strided writes that touch every
  destination page, so each page is modified by several writers (the
  multiple-writer protocol merges the twins' diffs).  After the barrier a
  processor faults on its own slab's pages and sends a diff request to
  every writer of each page: almost the same *data* volume as PVM (thanks
  to release consistency the diffs contain exactly the written words), but
  many more *messages* under the page-based invalidate protocol
  (Figure 11).  When slab boundaries fall mid-page, a page written by one
  processor is read by two, and the same diff is shipped twice -- the
  paper's false-sharing anomaly at processor counts that do not divide
  the array axes evenly.
* **PVM**: the transpose is explicit messages -- "we must figure out where
  each part of the A array goes and where each part of the B array comes
  from", the index arithmetic the paper calls much harder to write.  One
  message per (sender, receiver) pair per transpose.

Per iteration: evolve in frequency space, inverse-transform along the
local axis, transpose back, finish the inverse transform -- one measured
transpose per direction.  The initial forward 3-D FFT (and its data
distribution) is excluded from measurement, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["FftParams", "APP"]

#: Virtual CPU seconds per point per 1-D FFT pass.
FFT_CPU = 4.0e-6
#: Virtual CPU seconds per point for the frequency-space evolution.
EVOLVE_CPU = 0.2e-6
_EVOLVE = 0.98


@dataclass(frozen=True)
class FftParams:
    n1: int = 64
    n2: int = 64
    n3: int = 32
    iterations: int = 4
    seed: int = 173205

    @classmethod
    def tiny(cls) -> "FftParams":
        return cls(n1=16, n2=12, n3=8, iterations=2)

    @classmethod
    def bench(cls) -> "FftParams":
        """64 x 64 x 32: like the paper's size, slab boundaries align with
        pages at power-of-two processor counts; at 3, 5, 6, 7 processors
        slices straddle pages mid-row and the same diff is shipped to two
        readers -- the paper's false-sharing anomaly."""
        return cls(n1=64, n2=64, n3=32, iterations=4)

    @classmethod
    def paper(cls) -> "FftParams":
        """128 x 128 x 64 double-precision complex, 6 iterations (half of
        NAS class A, as the paper scaled down for swap space)."""
        return cls(n1=128, n2=128, n3=64, iterations=6)

    @property
    def points(self) -> int:
        return self.n1 * self.n2 * self.n3


def initial_field(params: FftParams) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(params.seed))
    re = rng.uniform(-1, 1, size=(params.n1, params.n2, params.n3))
    im = rng.uniform(-1, 1, size=(params.n1, params.n2, params.n3))
    return re + 1j * im


def slab(pid: int, nprocs: int, extent: int) -> Tuple[int, int]:
    lo = pid * extent // nprocs
    hi = (pid + 1) * extent // nprocs
    return lo, hi


def _fft_cost(npoints: int, passes: int) -> float:
    return npoints * passes * FFT_CPU


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: FftParams):
    a = initial_field(params)
    # Forward 3-D FFT (excluded from measurement, like the paper's
    # initial distribution).
    freq = np.fft.fft(np.fft.fft(np.fft.fft(a, axis=2), axis=1), axis=0)
    meter.compute(_fft_cost(params.points, 3))
    meter.mark()
    checksums: List[complex] = []
    for _ in range(params.iterations):
        freq = freq * _EVOLVE
        meter.compute(params.points * EVOLVE_CPU)
        a = np.fft.ifft(np.fft.ifft(np.fft.ifft(freq, axis=0), axis=1), axis=2)
        meter.compute(_fft_cost(params.points, 3))
        checksums.append(complex(a.sum()))
        freq = np.fft.fft(np.fft.fft(np.fft.fft(a, axis=2), axis=1), axis=0)
        meter.compute(_fft_cost(params.points, 3))
    return np.array(checksums)


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
def tmk_main(proc, params: FftParams):
    tmk = proc.tmk
    n1, n2, n3 = params.n1, params.n2, params.n3
    # Shared transpose targets; working slabs are private, as in the tuned
    # SPLASH/NAS ports.  The target layouts put each writer's contribution
    # in *contiguous* middle-axis slices -- B is (n3, n1, n2) so writer p
    # fills B[:, ilo:ihi, :], and A2 is (n1, n3, n2) so writer q fills
    # A2[:, klo:khi, :].  Most destination pages therefore have a single
    # writer and one diff request suffices per page (the paper: "each
    # transpose requires about <data/page-size> diff requests and
    # responses"); pages straddling a slab boundary have two readers and
    # ship the same diff twice -- the paper's false-sharing anomaly.
    shared_b = tmk.shared_array("fft_b", (n3, n1, n2), np.complex128)
    shared_a2 = tmk.shared_array("fft_a2", (n1, n3, n2), np.complex128)
    ilo, ihi = slab(tmk.pid, tmk.nprocs, n1)   # my planes of A (axis i)
    klo, khi = slab(tmk.pid, tmk.nprocs, n3)   # my planes of B (axis k)
    my_points_a = (ihi - ilo) * n2 * n3
    my_points_b = (khi - klo) * n2 * n1

    # Per-processor barrier sequence (every processor issues the same ids
    # in the same order).
    bid = [100]

    def next_barrier():
        yield from tmk.barrier_g(bid[0])
        bid[0] += 1

    def transpose_a_to_b(a_slab: np.ndarray):
        """a_slab is (i, j, k); write (k, i, j) slices; read my k-slab."""
        yield from shared_b.write_g((slice(None), slice(ilo, ihi), slice(None)),
                                    a_slab.transpose(2, 0, 1))
        yield from next_barrier()
        block = yield from shared_b.read_g(
            (slice(klo, khi), slice(None), slice(None)))
        return np.asarray(block).copy()

    def transpose_b_to_a(b_slab: np.ndarray):
        """b_slab is (k, i, j); write (i, k, j) slices; read my i-slab."""
        yield from shared_a2.write_g((slice(None), slice(klo, khi), slice(None)),
                                     b_slab.transpose(1, 0, 2))
        yield from next_barrier()
        block = yield from shared_a2.read_g(
            (slice(ilo, ihi), slice(None), slice(None)))
        return np.asarray(block).copy()

    a_slab = initial_field(params)[ilo:ihi]
    # Forward 3-D FFT (warm-up, excluded -- the paper excludes the initial
    # distribution).
    work = np.fft.fft(np.fft.fft(a_slab, axis=2), axis=1)
    proc.compute(_fft_cost(my_points_a, 2))
    b_slab = yield from transpose_a_to_b(work)   # (k, i, j)
    freq = np.fft.fft(b_slab, axis=1)        # n1-point FFTs, now local
    proc.compute(_fft_cost(my_points_b, 1))
    yield from next_barrier()
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    checksums: List[complex] = []
    for _ in range(params.iterations):
        freq = freq * _EVOLVE
        proc.compute(my_points_b * EVOLVE_CPU)
        # Inverse: the local n1 axis first, transpose back, then the rest.
        work = np.fft.ifft(freq, axis=1)
        proc.compute(_fft_cost(my_points_b, 1))
        a2_slab = yield from transpose_b_to_a(work)   # (i, k, j)
        a2_slab = np.fft.ifft(np.fft.ifft(a2_slab, axis=1), axis=2)
        proc.compute(_fft_cost(my_points_a, 2))
        checksums.append(complex(a2_slab.sum()))
        # Forward again for the next evolution step: a2_slab is (i, k, j);
        # FFT over j and k, then hand (i, j, k) to the transpose.
        work = np.fft.fft(np.fft.fft(a2_slab, axis=2), axis=1)
        proc.compute(_fft_cost(my_points_a, 2))
        b_slab = yield from transpose_a_to_b(work.transpose(0, 2, 1))
        freq = np.fft.fft(b_slab, axis=1)
        proc.compute(_fft_cost(my_points_b, 1))
    if tmk.pid == 0:
        proc.cluster.stop_measurement(proc)
    return np.array(checksums)


# ----------------------------------------------------------------------
# PVM
# ----------------------------------------------------------------------
_TAG_FWD = 70
_TAG_BWD = 71


def _pvm_transpose(pvm, proc, local: np.ndarray, my_lo: int,
                   src_extent: int, dst_extent: int, tag: int):
    """All-to-all transpose: ``local`` is my (planes, n_mid, src_extent)
    slab; returns my (dst planes, n_mid, src_total...) transposed slab.

    The explicit index bookkeeping here is exactly what the paper calls
    "much more error-prone than simply swapping the indices as in
    TreadMarks".
    """
    me, n = pvm.mytid, pvm.nprocs
    n_mid = local.shape[1]
    dlo, dhi = slab(me, n, dst_extent)
    out = np.empty((dhi - dlo, n_mid, src_extent), dtype=np.complex128)
    # My own block transposes locally.
    out[:, :, my_lo: my_lo + local.shape[0]] = \
        local[:, :, dlo:dhi].transpose(2, 1, 0)
    # Send every other processor its destination block of my slab.
    for p in range(n):
        if p == me:
            continue
        plo, phi = slab(p, n, dst_extent)
        block = local[:, :, plo:phi].transpose(2, 1, 0)
        buf = pvm.initsend()
        buf.pkdcplx(np.ascontiguousarray(block).reshape(-1))
        yield from pvm.send_g(p, tag, buf)
    for _ in range(n - 1):
        got = yield from pvm.recv_g(-1, tag)
        slo, shi = slab(got.src, n, src_extent)
        count = (dhi - dlo) * n_mid * (shi - slo)
        out[:, :, slo:shi] = got.upkdcplx(count).reshape(
            dhi - dlo, n_mid, shi - slo)
    return out


def pvm_main(proc, params: FftParams):
    pvm = proc.pvm
    me, n = pvm.mytid, pvm.nprocs
    n1, n2, n3 = params.n1, params.n2, params.n3
    ilo, ihi = slab(me, n, n1)
    klo, khi = slab(me, n, n3)
    my_points_a = (ihi - ilo) * n2 * n3
    my_points_b = (khi - klo) * n2 * n1

    a_slab = initial_field(params)[ilo:ihi]
    work = np.fft.fft(np.fft.fft(a_slab, axis=2), axis=1)
    proc.compute(_fft_cost(my_points_a, 2))
    b_slab = yield from _pvm_transpose(pvm, proc, work, ilo, n1, n3, _TAG_FWD)
    freq = np.fft.fft(b_slab, axis=2)
    proc.compute(_fft_cost(my_points_b, 1))
    if me == 0:
        proc.cluster.start_measurement(proc)
    checksums: List[complex] = []
    for _ in range(params.iterations):
        freq = freq * _EVOLVE
        proc.compute(my_points_b * EVOLVE_CPU)
        work = np.fft.ifft(freq, axis=2)
        proc.compute(_fft_cost(my_points_b, 1))
        a_slab = yield from _pvm_transpose(pvm, proc, work, klo, n3, n1,
                                           _TAG_BWD)
        a_slab = np.fft.ifft(np.fft.ifft(a_slab, axis=1), axis=2)
        proc.compute(_fft_cost(my_points_a, 2))
        checksums.append(complex(a_slab.sum()))
        work = np.fft.fft(np.fft.fft(a_slab, axis=2), axis=1)
        proc.compute(_fft_cost(my_points_a, 2))
        b_slab = yield from _pvm_transpose(pvm, proc, work, ilo, n1, n3,
                                           _TAG_FWD)
        freq = np.fft.fft(b_slab, axis=2)
        proc.compute(_fft_cost(my_points_b, 1))
    return np.array(checksums)


def _collect(results):
    """Per-iteration checksums are partial sums over slabs: add them."""
    return np.sum(np.stack(results), axis=0)


def _verify(par, seq) -> bool:
    return np.allclose(par, seq, rtol=1e-9, atol=1e-12)


APP = register(AppSpec(
    name="fft3d",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    collect=_collect,
    segment_bytes=1 << 23,
))
