"""Application harness: registry, runners, verification.

The experiment flow mirrors the paper's methodology:

* sequential time comes from a program "without any calls to PVM or
  TreadMarks" (:func:`run_sequential`);
* each parallel run reports the virtual time of its *measured window*
  (applications open it after initialization, matching the paper's
  warm-up exclusions) plus the full message statistics;
* speedup is sequential time divided by measured parallel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.races import AnalysisConfig, attach_sanitizer
from repro.obs.core import ObsConfig
from repro.sim.cluster import Cluster, ClusterConfig, ClusterResult, Processor
from repro.sim.costmodel import CostModel
from repro.sim.faults import FaultPlan
from repro.sim.recovery import (NodeFailure, RecoveryConfig, RecoveryReport,
                                plan_recovery)
from repro.sim.stats import MessageStats
from repro.sim.trace import Trace
from repro.tmk.api import TmkConfig, attach_tmk
from repro.ivy.api import IvyConfig, attach_ivy
from repro.pvm.api import attach_pvm
from repro.scabd import (ReplicationConfig, ReplicationReport, ScAbdConfig,
                         attach_scabd)
from repro.verify.invariants import attach_invariants

__all__ = [
    "APPS",
    "AppSpec",
    "ParallelResult",
    "SeqMeter",
    "SeqResult",
    "get_app",
    "register",
    "run_parallel",
    "run_sequential",
]


def compute_polled(proc, total: float, poll, chunk: float = 5e-3):
    """Charge ``total`` virtual seconds of master-side computation while
    periodically invoking the generator ``poll()``.

    PVM's master/slave applications run the master and one slave as two
    *time-shared processes* on processor 0; a single-threaded simulated
    processor must emulate that by interleaving its own slave work with
    servicing slave requests, or the co-located slave's long computations
    would stall the whole cluster.

    This is a generator (application bodies are generator-convention);
    ``poll`` must be a generator function too.
    """
    remaining = total
    while remaining > 0:
        dt = min(chunk, remaining)
        proc.compute(dt)
        remaining -= dt
        yield from poll()


class SeqMeter:
    """Virtual-time meter for sequential runs (no cluster, no messages)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.measure_from = 0.0

    def compute(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative time advance")
        self.now += dt

    def mark(self) -> None:
        """Open the measured window (end of initialization)."""
        self.measure_from = self.now

    @property
    def measured(self) -> float:
        return self.now - self.measure_from


@dataclass
class SeqResult:
    result: Any
    #: Virtual seconds inside the measured window (the Table 1 number).
    time: float


@dataclass
class ParallelResult:
    #: The application-level result (from the processor that owns it).
    result: Any
    #: Virtual seconds inside the measured window.
    time: float
    stats: MessageStats
    cluster: ClusterResult
    nprocs: int
    system: str
    #: Per-processor runtime endpoints (Tmk or Pvm objects), retained for
    #: post-run diagnostics (see repro.bench.analysis).
    endpoints: List[Any] = field(default_factory=list)
    #: The run's sanitizer (repro.analysis), when one was requested.
    sanitizer: Optional[Any] = None
    #: The run's protocol-invariant monitor (repro.verify.invariants),
    #: when ``invariants=True`` was requested.
    invariant_monitor: Optional[Any] = None
    #: Crash-recovery ledger (None unless a recovery config was given or
    #: the fault plan scheduled a permanent crash).
    recovery: Optional[RecoveryReport] = None
    #: Quorum-replication ledger (None unless the run used the SC-ABD
    #: failure-masking mode).
    replication: Optional[ReplicationReport] = None
    #: Span timeline (repro.obs.Timeline) when ObsConfig.timeline was on.
    timeline: Optional[Any] = None
    #: Time-attribution profiler (repro.obs.TimeProfiler) when
    #: ObsConfig.profile was on; feed to repro.obs.build_profile.
    profiler: Optional[Any] = None

    def total_messages(self) -> int:
        return self.stats.total(self.system).messages

    def total_kbytes(self) -> float:
        return self.stats.total(self.system).bytes / 1024.0


@dataclass(frozen=True)
class AppSpec:
    """One application: its three implementations plus harness metadata."""

    name: str
    sequential: Callable[[Any, Any], Any]
    tmk_main: Callable[[Processor, Any], Any]
    pvm_main: Callable[[Processor, Any], Any]
    #: Compare a parallel result against the sequential one.
    verify: Callable[[Any, Any], bool]
    #: Extract the canonical result from the per-processor return list.
    collect: Callable[[List[Any]], Any] = staticmethod(lambda results: results[0])
    #: Shared segment size this app needs under TreadMarks.
    segment_bytes: int = 1 << 23


APPS: Dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    if spec.name in APPS:
        raise ValueError(f"duplicate app {spec.name!r}")
    APPS[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    try:
        return APPS[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; available: {sorted(APPS)}")


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_sequential(app: AppSpec | str, params: Any) -> SeqResult:
    """The uninstrumented single-machine run (Table 1 baseline)."""
    spec = get_app(app) if isinstance(app, str) else app
    meter = SeqMeter()
    result = spec.sequential(meter, params)
    return SeqResult(result=result, time=meter.measured)


def run_parallel(app: AppSpec | str, system: str, nprocs: int, params: Any,
                 cost: Optional[CostModel] = None,
                 tmk_config: Optional[TmkConfig] = None,
                 pvm_route: str = "direct",
                 trace: Optional[Trace] = None,
                 faults: Optional[FaultPlan] = None,
                 analysis: Optional[AnalysisConfig] = None,
                 recovery: Optional[RecoveryConfig] = None,
                 obs: Optional[ObsConfig] = None,
                 replication: Optional[ReplicationConfig] = None,
                 scheduler: Optional[Any] = None,
                 invariants: bool = False,
                 engine: str = "threads",
                 kernels: str = "numpy") -> ParallelResult:
    """Run one application on a fresh simulated cluster.

    ``system`` is ``"tmk"``, ``"pvm"``, or ``"ivy"`` (the sequentially-
    consistent IVY baseline runs the TreadMarks version of the program
    unmodified).  ``faults`` installs a deterministic network fault plan
    (and with it the user-level reliability protocol).  ``analysis``
    attaches the DSM sanitizer (TreadMarks only: the happens-before
    check needs the LRC synchronization events); it observes but never
    charges, so accounting is identical with or without it.

    ``recovery`` configures checkpointing and the failure detector; it
    defaults on (detection only) whenever the fault plan schedules a
    permanent crash.  When a crash is detected mid-run, the run rolls
    back and re-executes with the failed rank restarted on a spare host
    (the deterministic simulator makes restore-and-replay equivalent to
    a fresh run), the recovery cost is added to the measured time, and
    the final result is bit-identical to the fault-free run.  Returns
    the application result, the measured virtual time, and the message
    statistics.

    ``replication`` selects the SC-ABD failure-*masking* mode instead
    (``system`` must be ``"tmk"``): the cluster grows by
    ``replication.replicas`` dedicated page-replica servers, page data
    moves through majority quorums, and the crash of a replica minority
    is absorbed without any rollback -- the result stays bit-identical
    to the fault-free run and only the quorum traffic (the
    ``"replication"`` stats system) and quorum waits are added.  Masking
    and rollback are alternatives: with ``replication`` set there are no
    checkpoints, and an unmaskable crash (an application rank, or one
    replica too many) aborts the run with ``NodeFailure``.

    ``scheduler`` overrides the engine's tie-break policy among ready
    threads at equal virtual time (see ``repro.verify.schedule``); the
    default ``None`` keeps the historical lowest-pid order.
    ``invariants=True`` attaches the runtime protocol-invariant monitors
    (see ``repro.verify.invariants``); a broken coherence rule raises
    ``InvariantViolation`` mid-run.  Neither changes virtual-time
    accounting: a default-scheduled run with invariants on computes
    byte-identical results.

    ``engine`` selects the execution backend: ``"threads"`` (one host
    thread per simulated processor, the historical default) or ``"coro"``
    (cooperative continuations on one host thread -- required past a few
    hundred simulated processors).  Both produce byte-identical results.

    ``kernels`` selects the page-ops kernel backend (``"pure"``,
    ``"numpy"``, or ``"compiled"``; see ``repro.kernels``).  Like the
    engine, it is a host-side execution detail: every backend computes
    byte-identical diffs, so results, traffic, and virtual times do not
    depend on it.
    """
    spec = get_app(app) if isinstance(app, str) else app
    if system not in ("tmk", "pvm", "ivy"):
        raise ValueError(
            f"system must be 'tmk', 'pvm' or 'ivy', got {system!r}")
    if analysis is not None and not analysis.enabled:
        analysis = None
    if analysis is not None and system != "tmk":
        raise ValueError(f"the sanitizer requires system='tmk', got {system!r}")
    if obs is not None and not obs.enabled:
        obs = None
    mask = replication is not None
    if mask and system != "tmk":
        raise ValueError(
            f"replication (failure masking) requires system='tmk', "
            f"got {system!r}")
    if mask and analysis is not None:
        raise ValueError("the sanitizer cannot run under quorum replication")
    if mask and recovery is not None and recovery.checkpoint_interval > 0:
        raise ValueError(
            "masking and rollback are alternatives: replication cannot be "
            "combined with checkpointing (checkpoint_interval > 0)")
    if recovery is None and faults is not None and faults.crash_at:
        recovery = RecoveryConfig()
    report = RecoveryReport() if (recovery is not None and not mask) else None
    plan = faults
    while True:
        total_procs = nprocs + (replication.replicas if mask else 0)
        cluster = Cluster(total_procs, config=ClusterConfig(
            cost=cost, trace=trace, faults=plan, recovery=recovery, obs=obs,
            scheduler=scheduler, engine=engine, kernels=kernels))
        sanitizer = None
        scabd_system = None
        if mask:
            endpoints = attach_scabd(
                cluster, ScAbdConfig(segment_bytes=spec.segment_bytes),
                replication)
            scabd_system = endpoints[0].system
            monitor_kind = "scabd"
            main = spec.tmk_main
        elif system == "tmk":
            config = tmk_config
            if config is None:
                config = TmkConfig(segment_bytes=spec.segment_bytes)
            endpoints = attach_tmk(cluster, config)
            if analysis is not None:
                sanitizer = attach_sanitizer(cluster, endpoints, analysis)
            monitor_kind = "tmk"
            main = spec.tmk_main
        elif system == "ivy":
            endpoints = attach_ivy(
                cluster, IvyConfig(segment_bytes=spec.segment_bytes))
            monitor_kind = "ivy"
            main = spec.tmk_main
        else:
            endpoints = attach_pvm(cluster, route=pvm_route)
            monitor_kind = "pvm"
            main = spec.pvm_main
        monitor = None
        if invariants:
            monitor = attach_invariants(cluster, endpoints, monitor_kind)
        try:
            outcome = cluster.run(main, args=(params,))
            break
        except NodeFailure as failure:
            if report is None:
                # Masking mode (or no recovery at all): there is no
                # checkpoint to roll back to, so an unmaskable crash
                # surfaces to the caller as a clean abort.
                raise
            # Survivors roll back to the failure's last checkpoint and
            # re-execute; deterministically equivalent to this re-run.
            plan = plan_recovery(failure, plan, cluster.recovery.config,
                                 report)
    if sanitizer is not None:
        sanitizer.finish(outcome.stats)
    time = outcome.measured
    if report is not None and report.recoveries:
        time += report.overhead_time
        outcome.stats.record("recovery", "rollback",
                             messages=report.recoveries,
                             nbytes=report.restored_bytes)
    # Replica servers return nothing; the application's results (and its
    # endpoints) are the first ``nprocs`` entries.
    app_procs = cluster.procs[:nprocs]
    return ParallelResult(
        result=spec.collect(outcome.results[:nprocs]),
        time=time,
        stats=outcome.stats,
        cluster=outcome,
        nprocs=nprocs,
        system=system,
        endpoints=[proc.pvm if system == "pvm" else proc.tmk
                   for proc in app_procs],
        sanitizer=sanitizer,
        invariant_monitor=monitor,
        recovery=report,
        replication=(scabd_system.report() if scabd_system is not None
                     else None),
        timeline=cluster.obs.timeline if cluster.obs is not None else None,
        profiler=cluster.obs.profiler if cluster.obs is not None else None,
    )


def verify_against_sequential(app: AppSpec | str, params: Any,
                              system: str, nprocs: int) -> bool:
    """Convenience used throughout the test suite."""
    spec = get_app(app) if isinstance(app, str) else app
    seq = run_sequential(spec, params)
    par = run_parallel(spec, system, nprocs, params)
    return spec.verify(par.result, seq.result)
