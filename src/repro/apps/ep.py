"""EP -- Embarrassingly Parallel (NAS benchmark).

"EP generates pairs of Gaussian random deviates and tabulates the number of
pairs in successive square annuli.  In the parallel version the only
communication is summing up a ten-integer list at the end of the program.
In TreadMarks, updates to the shared list are protected by a lock.  In PVM,
processor 0 receives the lists from each processor and sums them up."

Both versions achieve near-linear speedup because communication is
negligible relative to computation (paper Figure 1).

Determinism: pairs are generated in fixed-size blocks, each from its own
PCG64 stream, and blocks are assigned to processors -- so the sequential
and every parallel run tabulate exactly the same deviates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["EpParams", "APP", "generate_block", "NUM_ANNULI"]

NUM_ANNULI = 10
#: Pairs generated per RNG block (the unit of work distribution).
BLOCK_PAIRS = 1 << 14
#: Virtual CPU seconds per generated pair (Gaussian transform + tabulate);
#: calibrated to a ~100 MHz workstation running the NAS EP inner loop.
PAIR_CPU = 1.0e-6


@dataclass(frozen=True)
class EpParams:
    """Problem size: ``2**log2_pairs`` pairs of deviates."""

    log2_pairs: int = 22
    seed: int = 271828

    @classmethod
    def tiny(cls) -> "EpParams":
        return cls(log2_pairs=16)

    @classmethod
    def bench(cls) -> "EpParams":
        return cls(log2_pairs=22)

    @classmethod
    def paper(cls) -> "EpParams":
        """NAS class A: 2**28 pairs."""
        return cls(log2_pairs=28)

    @property
    def npairs(self) -> int:
        return 1 << self.log2_pairs

    @property
    def nblocks(self) -> int:
        return max(1, self.npairs // BLOCK_PAIRS)

    @property
    def pairs_per_block(self) -> int:
        return min(self.npairs, BLOCK_PAIRS)


def generate_block(params: EpParams, block: int) -> np.ndarray:
    """Tabulate one block of pairs into a 10-annulus histogram.

    Marsaglia polar method, as in NAS EP: uniform (x, y) in (-1, 1)^2,
    accept t = x^2+y^2 <= 1, deviates X = x*sqrt(-2 ln t / t) (same for Y),
    tally annulus floor(max(|X|, |Y|)).
    """
    rng = np.random.Generator(np.random.PCG64(params.seed + block))
    n = params.pairs_per_block
    x = rng.uniform(-1.0, 1.0, n)
    y = rng.uniform(-1.0, 1.0, n)
    t = x * x + y * y
    accept = (t <= 1.0) & (t > 0.0)
    t = t[accept]
    factor = np.sqrt(-2.0 * np.log(t) / t)
    gx = np.abs(x[accept] * factor)
    gy = np.abs(y[accept] * factor)
    annulus = np.floor(np.maximum(gx, gy)).astype(np.int64)
    annulus = annulus[annulus < NUM_ANNULI]
    return np.bincount(annulus, minlength=NUM_ANNULI)


def _block_cost(params: EpParams) -> float:
    return params.pairs_per_block * PAIR_CPU


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: EpParams) -> list:
    meter.mark()
    counts = np.zeros(NUM_ANNULI, dtype=np.int64)
    for block in range(params.nblocks):
        counts += generate_block(params, block)
        meter.compute(_block_cost(params))
    return counts.tolist()


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
_LOCK = 0
_B_START, _B_DONE = 0, 1


def tmk_main(proc, params: EpParams):
    tmk = proc.tmk
    shared = tmk.shared_array("ep_counts", (NUM_ANNULI,), np.int64)
    yield from tmk.barrier_g(_B_START)
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    local = np.zeros(NUM_ANNULI, dtype=np.int64)
    for block in range(tmk.pid, params.nblocks, tmk.nprocs):
        local += generate_block(params, block)
        proc.compute(_block_cost(params))
    yield from tmk.lock_acquire_g(_LOCK)
    yield from shared.add_g(slice(0, NUM_ANNULI), local)
    yield from tmk.lock_release_g(_LOCK)
    yield from tmk.barrier_g(_B_DONE)
    if tmk.pid == 0:
        counts = yield from shared.read_g()
        return counts.tolist()
    return None


# ----------------------------------------------------------------------
# PVM
# ----------------------------------------------------------------------
_TAG_COUNTS = 10


def pvm_main(proc, params: EpParams):
    pvm = proc.pvm
    if pvm.mytid == 0:
        proc.cluster.start_measurement(proc)
    counts = np.zeros(NUM_ANNULI, dtype=np.int64)
    for block in range(pvm.mytid, params.nblocks, pvm.nprocs):
        counts += generate_block(params, block)
        proc.compute(_block_cost(params))
    if pvm.mytid == 0:
        for _ in range(pvm.nprocs - 1):
            buf = yield from pvm.recv_g(-1, _TAG_COUNTS)
            counts += buf.upklong(NUM_ANNULI)
        return counts.tolist()
    buf = pvm.initsend()
    buf.pklong(counts)
    yield from pvm.send_g(0, _TAG_COUNTS, buf)
    return None


APP = register(AppSpec(
    name="ep",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=lambda par, seq: par == seq,
    segment_bytes=1 << 16,
))
