"""TSP -- traveling salesman by branch and bound.

"The major data structures are a pool of partially evaluated tours, a
priority queue containing pointers to tours in the pool, a stack of
pointers to unused tour elements in the pool, and the current shortest
path."  ``get_tour`` pops the most promising partial tour; if it is longer
than a threshold it is returned for exhaustive solving, otherwise it is
extended by one city and the promising extensions are pushed back.
``recursive_solve`` tries all permutations of the remaining cities (with
bound pruning) and updates the shortest tour under a lock.

* **TreadMarks**: all major structures are shared; ``get_tour`` is guarded
  by a lock, so the pool, priority queue and stack *migrate* between
  processors: >= 3 page faults per ``get_tour`` and, due to diff
  accumulation, ~ (n-1) diffs per fault -- the paper's explanation for the
  ~20-30% gap (Figure 6), along with contention for the ``get_tour`` lock.
* **PVM**: master/slave -- the master keeps all structures private and
  runs ``get_tour`` on request; only directly-solvable tours and shortest-
  path updates cross the network.

The optimal tour cost is deterministic and verified against the sequential
version.  (Pruning against a possibly-stale shared bound makes the *work*
timing-dependent in principle; the simulator is deterministic, so runs are
exactly reproducible.)
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.base import AppSpec, compute_polled, register

__all__ = ["TspParams", "APP"]

#: Virtual CPU seconds per permutation evaluated in recursive_solve
#: (each evaluates a full chain of remaining-city edges).
NODE_CPU = 35e-6
#: Virtual CPU seconds per extension generated in get_tour.
EXTEND_CPU = 8e-6
#: Default pool capacity (partial tours); overridable per problem size.
MAX_TOURS = 8192
_INF = np.iinfo(np.int32).max // 4
#: Bits reserved for the bound inside a packed priority key.
_PRIO_BITS = 22


def _prio(length: int, bound: int) -> int:
    """Packed queue priority: deeper partial tours are more promising
    (they are closer to solvable), ties broken by lower bound.  Packing
    into one int lets the shared-memory queue store it in a single cell."""
    if bound >= (1 << _PRIO_BITS):
        bound = (1 << _PRIO_BITS) - 1
    return ((64 - length) << _PRIO_BITS) | bound


def _prio_bound(key: int) -> int:
    return key & ((1 << _PRIO_BITS) - 1)


@dataclass(frozen=True)
class TspParams:
    ncities: int = 13
    #: get_tour returns paths longer than this; the rest is solved
    #: exhaustively by recursive_solve.
    threshold: int = 8
    #: Tour-pool capacity (the paper sizes it "large enough"; with
    #: deepest-first ordering the live frontier stays small).
    pool_slots: int = 1024
    seed: int = 577215

    @classmethod
    def tiny(cls) -> "TspParams":
        return cls(ncities=9, threshold=5)

    @classmethod
    def bench(cls) -> "TspParams":
        return cls(ncities=12, threshold=5)

    @classmethod
    def paper(cls) -> "TspParams":
        """19 cities, recursive_solve threshold 12."""
        return cls(ncities=19, threshold=12, pool_slots=2048)


def distance_matrix(params: TspParams) -> np.ndarray:
    """Symmetric integer distances from deterministic city coordinates."""
    rng = np.random.Generator(np.random.PCG64(params.seed))
    coords = rng.uniform(0, 1000, size=(params.ncities, 2))
    delta = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt((delta ** 2).sum(axis=2)).astype(np.int32)
    np.fill_diagonal(dist, 0)
    return dist


def greedy_tour_cost(dist: np.ndarray) -> int:
    """Nearest-neighbour tour from city 0, improved with 2-opt: the
    initial upper bound every version starts from.  A tight incumbent
    keeps the best-first frontier bounded, as in any practical
    branch-and-bound TSP."""
    n = dist.shape[0]
    d = [[int(v) for v in row] for row in dist]
    visited = [0]
    while len(visited) < n:
        last = visited[-1]
        row = d[last]
        city = min((c for c in range(n) if c not in visited),
                   key=row.__getitem__)
        visited.append(city)
    # 2-opt until no improving exchange remains.
    tour = visited
    improved = True
    while improved:
        improved = False
        for i in range(1, n - 1):
            for j in range(i + 1, n):
                a, b = tour[i - 1], tour[i]
                c, e = tour[j], tour[(j + 1) % n]
                if a == c or b == e:
                    continue
                delta = d[a][c] + d[b][e] - d[a][b] - d[c][e]
                if delta < 0:
                    tour[i: j + 1] = reversed(tour[i: j + 1])
                    improved = True
    cost = sum(d[tour[k]][tour[(k + 1) % n]] for k in range(n))
    return cost + 1



def remaining_slack(d: list, rem: List[int]) -> int:
    """Tight admissible completion estimate: every remaining city must be
    left through some edge toward another remaining city or city 0, so sum
    each remaining city's cheapest such edge.  Restricting the targets to
    the remaining set (rather than all cities) is what keeps the frontier
    of partial tours small."""
    if not rem:
        return 0
    targets = rem + [0]
    total = 0
    for r in rem:
        row = d[r]
        total += min(row[x] for x in targets if x != r)
    return total


def min_out_edges(dist: np.ndarray) -> np.ndarray:
    """Cheapest outgoing edge per city (for the admissible bound)."""
    masked = dist.astype(np.int64).copy()
    np.fill_diagonal(masked, np.iinfo(np.int64).max)
    return masked.min(axis=1)


def lower_bound(dist: np.ndarray, path: List[int], cost: int,
                min_out: Optional[np.ndarray] = None) -> int:
    """Admissible bound: path cost + cheapest outgoing edge of every
    remaining city.  O(len(path)) via the precomputed total."""
    if min_out is None:
        min_out = min_out_edges(dist)
    total = int(min_out.sum())
    return cost + total - int(min_out[path].sum())


class TourEngine:
    """The branch-and-bound logic shared by all three versions.

    Operates on plain Python state; the TreadMarks version mirrors this
    state into shared memory, the PVM master keeps it private.
    """

    def __init__(self, params: TspParams):
        self.params = params
        self.dist = distance_matrix(params)
        self.d = [[int(v) for v in row] for row in self.dist]
        self.min_out = [int(v) for v in min_out_edges(self.dist)]
        self.min_out_total = sum(self.min_out)
        self.queue: List[Tuple[int, int]] = []  # (bound, slot) heap
        self.pool: dict[int, Tuple[List[int], int]] = {}
        self.free: List[int] = list(range(params.pool_slots - 1, -1, -1))
        slot = self.free.pop()
        self.pool[slot] = ([0], 0)
        heapq.heappush(self.queue,
                       (_prio(1, self.min_out_total - self.min_out[0]), slot))

    def get_tour(self, best: int) -> Tuple[Optional[Tuple[List[int], int]], int, float]:
        """Pop-and-extend until a solvable path emerges.

        Returns (tour or None, extensions generated, virtual cost).
        """
        params, d = self.params, self.d
        extensions = 0
        while self.queue:
            # Pop the most promising partial tour: deepest first, then
            # lowest bound (ties by slot for determinism).
            key, slot = heapq.heappop(self.queue)
            bound = _prio_bound(key)
            path, cost = self.pool.pop(slot)
            self.free.append(slot)
            if bound >= best:
                continue  # pruned
            if len(path) > params.threshold:
                return (path, cost), extensions, extensions * EXTEND_CPU
            last = path[-1]
            row = d[last]
            rem = [c for c in range(params.ncities) if c not in path]
            slack = remaining_slack(d, rem)
            for city in rem:
                ncost = cost + row[city]
                nbound = ncost + slack
                if nbound >= best:
                    continue
                if not self.free:
                    raise RuntimeError("tour pool exhausted")
                nslot = self.free.pop()
                self.pool[nslot] = (path + [city], ncost)
                heapq.heappush(self.queue,
                               (_prio(len(path) + 1, nbound), nslot))
                extensions += 1
        return None, extensions, extensions * EXTEND_CPU


_TABLE_CACHE: dict = {}


def _tables(dist: np.ndarray) -> Tuple[list, list]:
    """Distance matrix as plain ints plus per-city min outgoing edge."""
    key = dist.tobytes()
    hit = _TABLE_CACHE.get(key)
    if hit is None:
        d = [[int(v) for v in row] for row in dist]
        min_out = [min(v for j, v in enumerate(row) if j != i)
                   for i, row in enumerate(d)]
        if len(_TABLE_CACHE) > 8:
            _TABLE_CACHE.clear()
        hit = _TABLE_CACHE[key] = (d, min_out)
    return hit


_PERM_CACHE: dict = {}


def _permutations(k: int) -> np.ndarray:
    """All permutations of range(k) as a (k!, k) index array (cached)."""
    perms = _PERM_CACHE.get(k)
    if perms is None:
        from itertools import permutations as _p
        perms = np.array(list(_p(range(k))), dtype=np.int64).reshape(-1, k)
        _PERM_CACHE[k] = perms
    return perms


def recursive_solve(dist: np.ndarray, path: List[int], cost: int,
                    best: int) -> Tuple[int, Optional[List[int]], int]:
    """Try all permutations of the remaining cities, as the paper
    describes ("tries all permutations of the remaining nodes
    recursively; it updates the shortest tour if a complete tour is found
    that is shorter than the current best tour").

    The enumeration is evaluated as one vectorized sweep (host-side
    optimization; the virtual cost charged is per permutation).  Returns
    (best cost found, best tour or None, permutations evaluated).
    """
    n = dist.shape[0]
    rem = np.array([x for x in range(n) if x not in path], dtype=np.int64)
    k = rem.size
    if k == 0:
        total = cost + int(dist[path[-1], path[0]])
        if total < best:
            return total, list(path), 1
        return best, None, 1
    perms = _permutations(k)
    seqs = rem[perms]                                   # (k!, k)
    costs = np.full(perms.shape[0], cost, dtype=np.int64)
    costs += dist[path[-1], seqs[:, 0]]
    for i in range(k - 1):
        costs += dist[seqs[:, i], seqs[:, i + 1]]
    costs += dist[seqs[:, -1], path[0]]
    win = int(np.argmin(costs))
    nodes = perms.shape[0]
    if int(costs[win]) < best:
        return int(costs[win]), list(path) + seqs[win].tolist(), nodes
    return best, None, nodes


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: TspParams):
    meter.mark()
    engine = TourEngine(params)
    dist = engine.dist
    best = greedy_tour_cost(dist)
    best_tour: Optional[List[int]] = None
    while True:
        tour, _, cost = engine.get_tour(best)
        meter.compute(cost)
        if tour is None:
            break
        path, pcost = tour
        nbest, ntour, nodes = recursive_solve(dist, path, pcost, best)
        meter.compute(nodes * NODE_CPU)
        if nbest < best:
            best, best_tour = nbest, ntour
    return best


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
_LOCK_QUEUE = 0
_LOCK_BEST = 1


class _SharedTourState:
    """The pool/queue/stack/best mirrored into shared memory.

    Layout (all page-aligned, so each structure migrates separately --
    "it takes at least 3 page faults to obtain the tour pool, priority
    queue and tour stack"):

    * ``pool``  -- (MAX_TOURS, ncities+2) int32: length, cost, path...
    * ``queue`` -- (MAX_TOURS+1, 2) int32: row 0 is (size, _); then
      (bound, slot) entries
    * ``stack`` -- (MAX_TOURS+1,) int32: slot 0 is the count, then free slots
    * ``best``  -- (1,) int32
    """

    def __init__(self, tmk, params: TspParams):
        self.params = params
        c = params.ncities
        slots = params.pool_slots
        self.pool = tmk.shared_array("tsp_pool", (slots, c + 2), np.int32)
        self.queue = tmk.shared_array("tsp_queue", (slots + 1, 2), np.int32)
        self.stack = tmk.shared_array("tsp_stack", (slots + 1,), np.int32)
        self.best = tmk.shared_array("tsp_best", (1,), np.int32)

    def init_master_g(self, dist: np.ndarray):
        params = self.params
        yield from self.best.set_g(0, greedy_tour_cost(dist))
        # All slots free except slot 0, which holds the root tour.
        count = params.pool_slots - 1
        yield from self.stack.set_g(0, count)
        yield from self.stack.write_g(
            slice(1, count + 1),
            np.arange(params.pool_slots - 1, 0, -1, dtype=np.int32))
        row = np.zeros(params.ncities + 2, dtype=np.int32)
        row[0] = 1  # path length
        row[1] = 0  # cost
        row[2] = 0  # city 0
        yield from self.pool.write_g((slice(0, 1), slice(None)), row[None, :])
        yield from self.queue.write_g(
            (slice(0, 2), slice(None)),
            np.array([[1, 0],
                      [_prio(1, lower_bound(dist, [0], 0)), 0]],
                     dtype=np.int32))

    # -- under the queue lock -------------------------------------------
    def pop_best_entry_g(self):
        """Pop the entry with the smallest packed priority key (deepest
        partial tour, then lowest bound); returns (bound, slot)."""
        size = yield from self.queue.get_g((0, 0))
        size = int(size)
        if size == 0:
            return None
        entries = yield from self.queue.read_g(
            (slice(1, size + 1), slice(None)))
        col0 = entries[:, 0]
        cand = np.flatnonzero(col0 == col0.min())
        if cand.size == 1:
            idx = int(cand[0])
        else:  # ties on the packed key: lowest slot-column, then row order
            idx = int(cand[int(np.argmin(entries[cand, 1]))])
        key, slot = entries[idx].tolist()
        last = entries[size - 1]
        if idx != size - 1:
            yield from self.queue.write_g(
                (slice(idx + 1, idx + 2), slice(None)), last[None, :])
        yield from self.queue.set_g((0, 0), size - 1)
        return _prio_bound(key), slot

    def read_tour_g(self, slot: int):
        row = yield from self.pool.read_g(
            (slice(slot, slot + 1), slice(None)))
        row = row.reshape(-1)
        length, cost = int(row[0]), int(row[1])
        return row[2: 2 + length].tolist(), cost

    def free_slot_g(self, slot: int):
        count = yield from self.stack.get_g(0)
        count = int(count)
        yield from self.stack.set_g(count + 1, slot)
        yield from self.stack.set_g(0, count + 1)

    def alloc_slot_g(self):
        count = yield from self.stack.get_g(0)
        count = int(count)
        if count == 0:
            raise RuntimeError("tour pool exhausted")
        slot = yield from self.stack.get_g(count)
        slot = int(slot)
        yield from self.stack.set_g(0, count - 1)
        return slot

    def push_tour_g(self, path: List[int], cost: int, bound: int):
        slot = yield from self.alloc_slot_g()
        row = np.zeros(self.params.ncities + 2, dtype=np.int32)
        row[0] = len(path)
        row[1] = cost
        row[2: 2 + len(path)] = path
        yield from self.pool.write_g((slice(slot, slot + 1), slice(None)),
                                     row[None, :])
        size = yield from self.queue.get_g((0, 0))
        size = int(size)
        key = _prio(len(path), bound)
        yield from self.queue.write_g(
            (slice(size + 1, size + 2), slice(None)),
            np.array([[key, slot]], dtype=np.int32))
        yield from self.queue.set_g((0, 0), size + 1)


def _tmk_get_tour_g(tmk, proc, state: _SharedTourState, dist: np.ndarray,
                    min_out: np.ndarray):
    """The shared-memory get_tour, guarded by the queue lock."""
    params = state.params
    yield from tmk.lock_acquire_g(_LOCK_QUEUE)
    try:
        while True:
            entry = yield from state.pop_best_entry_g()
            if entry is None:
                return None
            bound, slot = entry
            path, cost = yield from state.read_tour_g(slot)
            yield from state.free_slot_g(slot)
            # Benign race: the bound is written under _LOCK_BEST, which
            # this path does not hold; a stale value only weakens pruning.
            best = yield from state.best.get_racy_g(0)
            best = int(best)
            if bound >= best:
                continue
            if len(path) > params.threshold:
                return path, cost
            extensions = 0
            d, _ = _tables(dist)
            last = path[-1]
            row = d[last]
            rem = [c for c in range(params.ncities) if c not in path]
            slack = remaining_slack(d, rem)
            for city in rem:
                ncost = cost + row[city]
                nbound = ncost + slack
                if nbound >= best:
                    continue
                yield from state.push_tour_g(path + [city], ncost, nbound)
                extensions += 1
            proc.compute(extensions * EXTEND_CPU)
    finally:
        yield from tmk.lock_release_g(_LOCK_QUEUE)


def tmk_main(proc, params: TspParams):
    tmk = proc.tmk
    dist = distance_matrix(params)
    min_out = min_out_edges(dist)
    state = _SharedTourState(tmk, params)
    if tmk.pid == 0:
        yield from state.init_master_g(dist)
    yield from tmk.barrier_g(0)
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    while True:
        tour = yield from _tmk_get_tour_g(tmk, proc, state, dist, min_out)
        if tour is None:
            break
        path, cost = tour
        # Prune against the possibly-stale local copy of the bound
        # (benign race: the definitive check at the update is locked).
        local_best = yield from state.best.get_racy_g(0)
        local_best = int(local_best)
        nbest, ntour, nodes = recursive_solve(dist, path, cost, local_best)
        proc.compute(nodes * NODE_CPU)
        if nbest < local_best:
            yield from tmk.lock_acquire_g(_LOCK_BEST)
            current = yield from state.best.get_g(0)
            if nbest < int(current):
                yield from state.best.set_g(0, nbest)
            yield from tmk.lock_release_g(_LOCK_BEST)
    yield from tmk.barrier_g(1)
    final = yield from state.best.get_g(0)
    return int(final)


# ----------------------------------------------------------------------
# PVM (master/slave)
# ----------------------------------------------------------------------
_TAG_REQ = 40
_TAG_TOUR = 41
_TAG_BEST = 42
_TAG_DONE = 43


def _pvm_master(proc, params: TspParams):
    pvm = proc.pvm
    n = pvm.nprocs
    engine = TourEngine(params)
    dist = engine.dist
    best = greedy_tour_cost(dist)
    done_sent = 0

    if n == 1:
        # No slaves: the master's co-located slave does everything.
        while True:
            tour, _, cost = engine.get_tour(best)
            proc.compute(cost)
            if tour is None:
                return best
            path, pcost = tour
            nbest, _, nodes = recursive_solve(dist, path, pcost, best)
            proc.compute(nodes * NODE_CPU)
            best = min(best, nbest)

    def handle(buf):
        """Process one message; returns True if it was a work request."""
        nonlocal best, done_sent
        if buf.tag == _TAG_BEST:
            cand = int(buf.upkint(1)[0])
            best = min(best, cand)
            return False
        buf.upkint(1)
        tour, _, cost = engine.get_tour(best)
        proc.compute(cost)
        out = pvm.initsend()
        if tour is None:
            out.pkint([0])
            yield from pvm.send_g(buf.src, _TAG_DONE, out)
            done_sent += 1
        else:
            path, pcost = tour
            out.pkint([len(path), pcost, best])
            out.pkint(path)
            yield from pvm.send_g(buf.src, _TAG_TOUR, out)
        return True

    def poll():
        while True:
            buf = yield from pvm.nrecv_g(-1, -1)
            if buf is None:
                return
            yield from handle(buf)

    while done_sent < n - 1:
        # Drain whatever has arrived, then do a unit of the master's own
        # slave work (time-shared with request service) if the queue still
        # has promising tours.
        buf = yield from pvm.nrecv_g(-1, -1)
        if buf is not None:
            yield from handle(buf)
            continue
        tour, _, cost = engine.get_tour(best)
        yield from compute_polled(proc, cost, poll)
        if tour is not None:
            path, pcost = tour
            nbest, _, nodes = recursive_solve(dist, path, pcost, best)
            yield from compute_polled(proc, nodes * NODE_CPU, poll)
            best = min(best, nbest)
        else:
            buf = yield from pvm.recv_g(-1, -1)
            yield from handle(buf)
    return best


def _pvm_slave(proc, params: TspParams):
    pvm = proc.pvm
    dist = distance_matrix(params)
    best = greedy_tour_cost(dist)
    while True:
        buf = pvm.initsend()
        buf.pkint([pvm.mytid])
        yield from pvm.send_g(0, _TAG_REQ, buf)
        reply = yield from pvm.recv_g(0, -1)
        if reply.tag == _TAG_DONE:
            reply.upkint(1)
            return
        header = reply.upkint(3)
        length, cost, best = int(header[0]), int(header[1]), int(header[2])
        path = [int(v) for v in reply.upkint(length)]
        nbest, _, nodes = recursive_solve(dist, path, cost, best)
        proc.compute(nodes * NODE_CPU)
        if nbest < best:
            best = nbest
            out = pvm.initsend()
            out.pkint([best])
            yield from pvm.send_g(0, _TAG_BEST, out)


def pvm_main(proc, params: TspParams):
    pvm = proc.pvm
    if pvm.mytid == 0:
        proc.cluster.start_measurement(proc)
        result = yield from _pvm_master(proc, params)
        return result
    yield from _pvm_slave(proc, params)
    return None


APP = register(AppSpec(
    name="tsp",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=lambda par, seq: par == seq,
    segment_bytes=1 << 21,
))
