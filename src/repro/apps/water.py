"""Water -- molecular dynamics (SPLASH), simplified physics, same structure.

The main data structure is a one-dimensional array of molecule records.
"The parallel algorithm statically divides the array of molecules into
equal contiguous chunks.  Each processor computes and updates the
intermolecular force between each of its molecules and each of the n/2
molecules following it in the array, in wraparound fashion."

* **TreadMarks** (the paper's tuned SPLASH port): only the displacements
  and forces live in shared memory; a lock is associated with each
  processor; force contributions are accumulated in a *private* copy and
  added to the shared array once per (contributor, owner) pair under the
  owner's lock.  A processor may fault again when reading the final forces
  of its own molecules, and -- since a 4-KB page holds ~170 molecule
  force records -- *false sharing* on chunk-boundary pages plus *diff
  accumulation* (each force page is modified by ~n/2 processors per step)
  inflate TreadMarks traffic: at 288 molecules it ships ~2x the PVM data,
  at 1728 molecules the ratio and the false-sharing fraction drop and
  TreadMarks comes within ~10% of PVM (paper Figures 8 and 9).
* **PVM**: processors exchange displacements before the force phase and
  locally-accumulated force contributions after it -- two user messages
  per interacting processor pair per step.

Physics is deliberately simplified (soft inverse-square pair force, no
cutoff bookkeeping, leapfrog update) -- the communication structure, data
layout and work distribution are what the experiment measures.  Parallel
positions match the sequential run to floating-point accumulation order
(verified with allclose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["WaterParams", "APP"]

#: Virtual CPU seconds per intermolecular pair interaction (the real Water
#: evaluates ~1000 flops per molecule pair: 9 atom pairs plus derivatives).
PAIR_CPU = 40e-6
#: Virtual CPU seconds of intramolecular work per molecule per step.
INTRA_CPU = 200e-6
_DT = 1e-3
_SOFT = 0.1


@dataclass(frozen=True)
class WaterParams:
    nmol: int = 288
    steps: int = 2
    seed: int = 141421

    @classmethod
    def tiny(cls) -> "WaterParams":
        return cls(nmol=64, steps=2)

    @classmethod
    def bench_288(cls) -> "WaterParams":
        return cls(nmol=288, steps=2)

    @classmethod
    def bench_1728(cls) -> "WaterParams":
        return cls(nmol=1728, steps=2)

    @classmethod
    def paper_288(cls) -> "WaterParams":
        """288 molecules, 5 time steps."""
        return cls(nmol=288, steps=5)

    @classmethod
    def paper_1728(cls) -> "WaterParams":
        """1728 molecules, 5 time steps."""
        return cls(nmol=1728, steps=5)


def initial_positions(params: WaterParams) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(params.seed))
    side = int(np.ceil(params.nmol ** (1 / 3)))
    grid = np.stack(np.meshgrid(*[np.arange(side)] * 3, indexing="ij"),
                    axis=-1).reshape(-1, 3)[: params.nmol]
    return grid * 2.0 + rng.uniform(-0.2, 0.2, size=(params.nmol, 3))


def chunk(pid: int, nprocs: int, nmol: int) -> Tuple[int, int]:
    lo = pid * nmol // nprocs
    hi = (pid + 1) * nmol // nprocs
    return lo, hi


def window_forces(pos: np.ndarray, lo: int, hi: int) -> Tuple[np.ndarray, float]:
    """Force contributions of molecules [lo, hi) interacting with the n/2
    molecules following each (wraparound).  Returns (full-length private
    force array, virtual cost)."""
    n = pos.shape[0]
    half = n // 2
    forces = np.zeros_like(pos)
    for i in range(lo, hi):
        idx = np.arange(i + 1, i + 1 + half) % n
        delta = pos[i] - pos[idx]
        r2 = (delta ** 2).sum(axis=1) + _SOFT
        f = delta / (r2 ** 2)[:, None]
        forces[i] += f.sum(axis=0)
        forces[idx] -= f
    cost = (hi - lo) * half * PAIR_CPU + (hi - lo) * INTRA_CPU
    return forces, cost


def owners_touched(lo: int, hi: int, nprocs: int, nmol: int) -> List[Tuple[int, int, int]]:
    """Which owners' rows the contributor [lo, hi) writes: a list of
    (owner pid, row lo, row hi) covering [lo, hi + nmol//2) wraparound."""
    half = nmol // 2
    spans = []
    # The union of touched rows never exceeds the whole array (relevant
    # when one processor's window wraps all the way around).
    start, end = lo, min(hi + half, lo + nmol)
    for p in range(nprocs):
        clo, chi = chunk(p, nprocs, nmol)
        # Overlap in plain coordinates and in the wrapped image.
        for base in (0, nmol):
            olo = max(start, clo + base)
            ohi = min(end, chi + base)
            if olo < ohi:
                spans.append((p, olo - base, ohi - base))
    return spans


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: WaterParams):
    meter.mark()
    pos = initial_positions(params)
    vel = np.zeros_like(pos)
    for _ in range(params.steps):
        forces, cost = window_forces(pos, 0, params.nmol)
        meter.compute(cost)
        vel += forces * _DT
        pos = pos + vel * _DT
    return pos


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
def tmk_main(proc, params: WaterParams):
    tmk = proc.tmk
    n = params.nmol
    pos = tmk.shared_array("water_pos", (n, 3), np.float64)
    shf = tmk.shared_array("water_forces", (n, 3), np.float64)
    lo, hi = chunk(tmk.pid, tmk.nprocs, n)
    vel = np.zeros((hi - lo, 3))
    if tmk.pid == 0:
        yield from pos.write_g((slice(None), slice(None)),
                               initial_positions(params))
    yield from tmk.barrier_g(0)
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    bid = 1
    for _ in range(params.steps):
        # Owners zero their force rows for the new step.
        yield from shf.write_g((slice(lo, hi), slice(None)), 0.0)
        yield from tmk.barrier_g(bid); bid += 1
        # Force phase: read the displacements (faults on remote chunks),
        # accumulate into a private copy.
        local_pos = yield from pos.read_g((slice(None), slice(None)))
        local_pos = np.asarray(local_pos)
        forces, cost = window_forces(local_pos, lo, hi)
        proc.compute(cost)
        # Add contributions to each touched owner's rows under its lock.
        for owner, olo, ohi in owners_touched(lo, hi, tmk.nprocs, n):
            yield from tmk.lock_acquire_g(owner)
            yield from shf.add_g((slice(olo, ohi), slice(None)),
                                 forces[olo:ohi])
            yield from tmk.lock_release_g(owner)
        yield from tmk.barrier_g(bid); bid += 1
        # Update phase: owners read their final forces (may fault again)
        # and write their displacements.
        final = yield from shf.read_g((slice(lo, hi), slice(None)))
        vel += final * _DT
        yield from pos.add_g((slice(lo, hi), slice(None)), vel * _DT)
        yield from tmk.barrier_g(bid); bid += 1
    band = yield from pos.read_g((slice(lo, hi), slice(None)))
    return lo, hi, np.asarray(band).copy()


# ----------------------------------------------------------------------
# PVM
# ----------------------------------------------------------------------
_TAG_POS = 50
_TAG_FORCE = 51


def pvm_main(proc, params: WaterParams):
    pvm = proc.pvm
    me, nprocs = pvm.mytid, pvm.nprocs
    n = params.nmol
    lo, hi = chunk(me, nprocs, n)
    pos = initial_positions(params)  # everyone derives the same start state
    vel = np.zeros((hi - lo, 3))
    # Who do I exchange with?  I write force rows of `targets`; symmetric
    # reasoning says `sources` write mine, and displacements flow opposite.
    targets = [(p, olo, ohi) for p, olo, ohi in
               owners_touched(lo, hi, nprocs, n) if p != me]
    needs_my_pos = sorted({p for p in range(nprocs) if p != me and any(
        q == me for q, _, _ in owners_touched(*chunk(p, nprocs, n)[:2],
                                              nprocs, n))})
    for _ in range(params.steps):
        # Exchange displacements before the force computation.
        for p in needs_my_pos:
            buf = pvm.initsend()
            buf.pkdouble(pos[lo:hi].reshape(-1))
            yield from pvm.send_g(p, _TAG_POS, buf)
        senders = sorted({p for p, _, _ in targets})
        for p in senders:
            got = yield from pvm.recv_g(p, _TAG_POS)
            plo, phi = chunk(p, nprocs, n)
            pos[plo:phi] = got.upkdouble((phi - plo) * 3).reshape(-1, 3)
        forces, cost = window_forces(pos, lo, hi)
        proc.compute(cost)
        # Communicate locally accumulated force modifications to owners.
        for p, olo, ohi in targets:
            buf = pvm.initsend()
            buf.pkint([olo, ohi])
            buf.pkdouble(forces[olo:ohi].reshape(-1))
            yield from pvm.send_g(p, _TAG_FORCE, buf)
        total = forces[lo:hi].copy()
        for _ in range(len(needs_my_pos)):
            got = yield from pvm.recv_g(-1, _TAG_FORCE)
            header = got.upkint(2)
            olo, ohi = int(header[0]), int(header[1])
            total[olo - lo: ohi - lo] += got.upkdouble(
                (ohi - olo) * 3).reshape(-1, 3)
        vel += total * _DT
        pos[lo:hi] += vel * _DT
    return lo, hi, pos[lo:hi].copy()


def _collect(results):
    n = max(hi for _, hi, _ in results)
    out = np.zeros((n, 3))
    for lo, hi, block in results:
        out[lo:hi] = block
    return out


def _verify(par, seq) -> bool:
    return np.allclose(par, seq, rtol=1e-9, atol=1e-12)


APP = register(AppSpec(
    name="water",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    collect=_collect,
    segment_bytes=1 << 17,
))
