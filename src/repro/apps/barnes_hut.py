"""Barnes-Hut -- hierarchical N-body simulation (SPLASH).

Four phases per time step (paper section 3.7):

1. **MakeTree** -- every processor reads all shared body positions and
   builds the oct-tree in *private* memory (the cells are private; only the
   body array is shared).
2. **Get_my_bodies** -- costzone partitioning: each processor takes a set
   of *logically consecutive tree leaves*.  Owned bodies are adjacent in
   the Barnes-Hut tree but **not adjacent in memory** -- the root cause of
   TreadMarks' false sharing here.
3. **Force computation** -- no synchronization; each processor computes
   forces on its own bodies (reading everybody's positions).
4. **Update** -- owners write positions/velocities of their (scattered)
   bodies; the barrier after force computation ensures all reads finished.

* **TreadMarks**: scattered ownership means every body page has several
  writers, so a page fault triggers diff requests to several processors
  and pulls in unwanted data (paper: ~2-3x PVM's message count).
* **PVM**: "every processor broadcasts its bodies at the end of each
  iteration"; at 8 processors the simultaneous broadcasts saturate the
  FDDI ring -- both systems speed up poorly (Figure 10).

The first time step is a warm-up and excluded from measurement (the paper
times the last iterations only).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["BhParams", "APP", "OctTree"]

#: Virtual CPU seconds per body-node interaction in the force phase.
INT_CPU = 0.8e-6
#: Virtual CPU seconds per body for one tree build.
BUILD_CPU = 5e-6
#: Bodies per leaf cell.
LEAF_CAP = 8
_THETA2 = 0.5 ** 2
_SOFT = 0.05
_DT = 1e-2


@dataclass(frozen=True)
class BhParams:
    nbodies: int = 1024
    steps: int = 4
    #: Steps excluded from the measured window (cold start).
    warmup: int = 1
    seed: int = 662607

    @classmethod
    def tiny(cls) -> "BhParams":
        return cls(nbodies=128, steps=2, warmup=0)

    @classmethod
    def bench(cls) -> "BhParams":
        return cls(nbodies=1024, steps=4, warmup=1)

    @classmethod
    def paper(cls) -> "BhParams":
        """4096 bodies, 6 steps, last 4 timed."""
        return cls(nbodies=4096, steps=6, warmup=2)


def initial_state(params: BhParams) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(positions, velocities, masses) -- a Plummer-ish random ball."""
    rng = np.random.Generator(np.random.PCG64(params.seed))
    pos = rng.normal(0.0, 1.0, size=(params.nbodies, 3))
    vel = rng.normal(0.0, 0.05, size=(params.nbodies, 3))
    mass = rng.uniform(0.5, 1.5, size=params.nbodies)
    return pos, vel, mass


class OctTree:
    """A private Barnes-Hut oct-tree (cells live outside shared memory)."""

    __slots__ = ("children", "com", "mass", "size", "leaf_bodies", "dfs_order")

    def __init__(self, pos: np.ndarray, mass: np.ndarray) -> None:
        self.children: List[List[int]] = []   # 8 child node ids or -1
        self.com: List[np.ndarray] = []
        self.mass: List[float] = []
        self.size: List[float] = []
        self.leaf_bodies: List[np.ndarray] = []
        order: List[int] = []

        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        center = (lo + hi) / 2.0
        half = float((hi - lo).max()) / 2.0 + 1e-9

        def build(idx: np.ndarray, center: np.ndarray, half: float) -> int:
            node = len(self.mass)
            m = mass[idx]
            total = float(m.sum())
            self.children.append([-1] * 8)
            self.com.append((pos[idx] * m[:, None]).sum(axis=0) / total)
            self.mass.append(total)
            self.size.append(2.0 * half)
            if idx.size <= LEAF_CAP:
                self.leaf_bodies.append(idx)
                order.extend(int(i) for i in idx)
                return node
            self.leaf_bodies.append(np.empty(0, dtype=np.int64))
            octant = ((pos[idx, 0] > center[0]).astype(np.int64)
                      | ((pos[idx, 1] > center[1]).astype(np.int64) << 1)
                      | ((pos[idx, 2] > center[2]).astype(np.int64) << 2))
            for o in range(8):
                sub = idx[octant == o]
                if sub.size == 0:
                    continue
                offset = np.array([half / 2 if (o >> b) & 1 else -half / 2
                                   for b in range(3)])
                self.children[node][o] = build(sub, center + offset, half / 2)
            return node

        build(np.arange(pos.shape[0]), center, half)
        #: Bodies in tree (DFS leaf) order -- the costzone ordering.
        self.dfs_order = np.array(order, dtype=np.int64)


@lru_cache(maxsize=8)
def _cached_tree(pos_bytes: bytes, mass_bytes: bytes,
                 n: int) -> OctTree:
    """All processors build identical trees from identical shared data;
    the simulator deduplicates the host-side work (each simulated
    processor is still charged the full virtual build cost)."""
    pos = np.frombuffer(pos_bytes, dtype=np.float64).reshape(n, 3)
    mass = np.frombuffer(mass_bytes, dtype=np.float64)
    return OctTree(pos, mass)


def make_tree(pos: np.ndarray, mass: np.ndarray) -> OctTree:
    return _cached_tree(pos.tobytes(), mass.tobytes(), pos.shape[0])


def compute_forces(tree: OctTree, pos: np.ndarray, mass: np.ndarray,
                   targets: np.ndarray) -> Tuple[np.ndarray, int]:
    """Accelerations on ``targets`` via the opening-criterion traversal.

    Returns (accelerations (len(targets), 3), interaction count).
    """
    acc = np.zeros((targets.size, 3))
    interactions = 0
    tpos = pos[targets]

    def visit(node: int, sel: np.ndarray) -> None:
        nonlocal interactions
        if sel.size == 0:
            return
        d = tree.com[node] - tpos[sel]
        r2 = (d * d).sum(axis=1) + _SOFT
        leaf = tree.leaf_bodies[node]
        if leaf.size > 0:
            # Direct body-body interactions, excluding self.
            for b in leaf:
                db = pos[b] - tpos[sel]
                rb2 = (db * db).sum(axis=1) + _SOFT
                notself = targets[sel] != b
                contrib = (mass[b] * db / (rb2 ** 1.5)[:, None])
                acc[sel[notself]] += contrib[notself]
                interactions += int(notself.sum())
            return
        accept = (tree.size[node] ** 2) < _THETA2 * r2
        hit = sel[accept]
        if hit.size:
            dh = tree.com[node] - tpos[hit]
            rh2 = (dh * dh).sum(axis=1) + _SOFT
            acc[hit] += tree.mass[node] * dh / (rh2 ** 1.5)[:, None]
            interactions += hit.size
        rest = sel[~accept]
        if rest.size:
            for child in tree.children[node]:
                if child >= 0:
                    visit(child, rest)

    visit(0, np.arange(targets.size))
    return acc, interactions


def costzone_partition(tree: OctTree, pid: int, nprocs: int) -> np.ndarray:
    """Equal-count chunks of the tree's DFS leaf order (sorted for
    contiguous-run shared accesses)."""
    order = tree.dfs_order
    lo = pid * order.size // nprocs
    hi = (pid + 1) * order.size // nprocs
    return np.sort(order[lo:hi])


def contiguous_runs(sorted_idx: np.ndarray) -> List[Tuple[int, int]]:
    """Split sorted indices into maximal contiguous [lo, hi) runs."""
    if sorted_idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(sorted_idx) > 1) + 1
    runs = []
    for seg in np.split(sorted_idx, breaks):
        runs.append((int(seg[0]), int(seg[-1]) + 1))
    return runs


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: BhParams):
    pos, vel, mass = initial_state(params)
    all_bodies = np.arange(params.nbodies)
    for step in range(params.steps):
        if step == params.warmup:
            meter.mark()
        tree = make_tree(pos, mass)
        meter.compute(params.nbodies * BUILD_CPU)
        acc, interactions = compute_forces(tree, pos, mass, all_bodies)
        meter.compute(interactions * INT_CPU)
        vel += acc * _DT
        pos = pos + vel * _DT
    return pos


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
def tmk_main(proc, params: BhParams):
    tmk = proc.tmk
    n = params.nbodies
    spos = tmk.shared_array("bh_pos", (n, 3), np.float64)
    svel = tmk.shared_array("bh_vel", (n, 3), np.float64)
    smass = tmk.shared_array("bh_mass", (n,), np.float64)
    if tmk.pid == 0:
        pos0, vel0, mass0 = initial_state(params)
        yield from spos.write_g((slice(None), slice(None)), pos0)
        yield from svel.write_g((slice(None), slice(None)), vel0)
        yield from smass.write_g(slice(0, n), mass0)
    yield from tmk.barrier_g(0)
    bid = 1
    for step in range(params.steps):
        if step == params.warmup and tmk.pid == 0:
            proc.cluster.start_measurement(proc)
        # MakeTree: read every shared body, build private cells.
        pos = yield from spos.read_g((slice(None), slice(None)))
        pos = np.asarray(pos)
        mass = yield from smass.read_g(slice(0, n))
        mass = np.asarray(mass)
        tree = make_tree(pos, mass)
        proc.compute(n * BUILD_CPU)
        yield from tmk.barrier_g(bid); bid += 1
        # Get_my_bodies (costzones) + force computation (no sync).
        mine = costzone_partition(tree, tmk.pid, tmk.nprocs)
        acc, interactions = compute_forces(tree, pos, mass, mine)
        proc.compute(interactions * INT_CPU)
        yield from tmk.barrier_g(bid); bid += 1
        # Update my (memory-scattered) bodies, run by run -- the per-page
        # access pattern the paper's false-sharing analysis describes.
        runs = contiguous_runs(mine)
        new_vel = np.empty((mine.size, 3))
        at = 0
        for lo, hi in runs:
            k = hi - lo
            band = yield from svel.read_g((slice(lo, hi), slice(None)))
            new_vel[at: at + k] = band
            at += k
        new_vel += acc * _DT
        new_pos = pos[mine] + new_vel * _DT
        at = 0
        for lo, hi in runs:
            k = hi - lo
            yield from svel.write_g((slice(lo, hi), slice(None)),
                                    new_vel[at: at + k])
            yield from spos.write_g((slice(lo, hi), slice(None)),
                                    new_pos[at: at + k])
            at += k
        yield from tmk.barrier_g(bid); bid += 1
        last = (mine, new_pos)
    if tmk.pid == 0:
        proc.cluster.stop_measurement(proc)
    mine, new_pos = last
    return mine, new_pos.copy()


# ----------------------------------------------------------------------
# PVM
# ----------------------------------------------------------------------
_TAG_BODIES = 60


def pvm_main(proc, params: BhParams):
    pvm = proc.pvm
    me, nprocs = pvm.mytid, pvm.nprocs
    n = params.nbodies
    pos, vel, mass = initial_state(params)  # replicated private state
    for step in range(params.steps):
        if step == params.warmup and me == 0:
            proc.cluster.start_measurement(proc)
        tree = make_tree(pos, mass)
        proc.compute(n * BUILD_CPU)
        mine = costzone_partition(tree, me, nprocs)
        acc, interactions = compute_forces(tree, pos, mass, mine)
        proc.compute(interactions * INT_CPU)
        vel[mine] += acc * _DT
        pos[mine] += vel[mine] * _DT
        if nprocs > 1:
            # "Every processor broadcasts its bodies at the end of each
            # iteration" -- the all-to-all that saturates the ring.
            buf = pvm.initsend()
            buf.pkdouble(pos[mine].reshape(-1))
            buf.pkdouble(vel[mine].reshape(-1))
            yield from pvm.bcast_g(_TAG_BODIES, buf)
            for _ in range(nprocs - 1):
                got = yield from pvm.recv_g(-1, _TAG_BODIES)
                theirs = costzone_partition(tree, got.src, nprocs)
                pos[theirs] = got.upkdouble(theirs.size * 3).reshape(-1, 3)
                vel[theirs] = got.upkdouble(theirs.size * 3).reshape(-1, 3)
        last = mine
    return last, pos[last].copy()


def _collect(results):
    n = sum(idx.size for idx, _ in results)
    out = np.zeros((n, 3))
    for idx, block in results:
        out[idx] = block
    return out


def _verify(par, seq) -> bool:
    return np.allclose(par, seq, rtol=1e-9, atol=1e-12)


APP = register(AppSpec(
    name="barnes_hut",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    collect=_collect,
    segment_bytes=1 << 19,
))
