"""QSORT -- parallel quicksort over a work queue.

"QSORT is parallelized using a work queue that contains descriptions of
unsorted sublists, from which worker threads continuously remove the
lists."  A popped sublist is either partitioned (producing two new queue
entries) or, below the bubblesort threshold, sorted in place.

* **TreadMarks**: the list and the work queue are shared; queue accesses
  are protected by a lock.  "The processor releases the task queue without
  subdividing the subarray it removes": partitioning happens outside the
  lock and the new subarrays are pushed on re-acquisition.  Subarrays are
  larger than a page, so each migration costs multiple diff requests, plus
  false sharing at subarray/page boundaries and diff accumulation as the
  queue and intermediate subarrays migrate between processors (the paper's
  explanation of the ~25% gap, Figure 7).
* **PVM**: master/slave -- the master keeps the array and the queue
  private; slaves receive subarrays, partition or sort them, and ship the
  results back.

Partitioning is deterministic (Lomuto-style with the last element as the
pivot, stable three-way split), so every version produces the same task
tree; the final sorted array is verified for exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.base import AppSpec, compute_polled, register

__all__ = ["QsortParams", "APP"]

#: Virtual CPU seconds per element for one partitioning pass.
PART_CPU = 0.15e-6
#: Virtual CPU seconds per element-comparison in bubblesort (charged k^2/2).
BUBBLE_CPU = 0.3e-6
#: Backoff between queue polls when the queue is momentarily empty.
POLL_BACKOFF = 1e-3
#: Work-queue capacity (entries).
MAX_QUEUE = 1024


@dataclass(frozen=True)
class QsortParams:
    nkeys: int = 1 << 17
    threshold: int = 1024
    seed: int = 161803

    @classmethod
    def tiny(cls) -> "QsortParams":
        return cls(nkeys=1 << 12, threshold=256)

    @classmethod
    def bench(cls) -> "QsortParams":
        return cls(nkeys=1 << 18, threshold=2048)

    @classmethod
    def paper(cls) -> "QsortParams":
        """256K integers, bubblesort threshold 1024."""
        return cls(nkeys=1 << 18, threshold=1024)


def initial_keys(params: QsortParams) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(params.seed))
    return rng.integers(0, 1 << 30, size=params.nkeys, dtype=np.int32)


def partition(values: np.ndarray) -> Tuple[np.ndarray, int, int]:
    """Three-way split around the last element (deterministic).

    Returns (rearranged values, start of the equal run, end of the equal
    run); the left part is [0, eq_lo), the right part is [eq_hi, len).
    """
    pivot = values[-1]
    less = values[values < pivot]
    equal = values[values == pivot]
    greater = values[values > pivot]
    return np.concatenate([less, equal, greater]), less.size, less.size + equal.size


def partition_cost(k: int) -> float:
    return k * PART_CPU


def bubble_cost(k: int) -> float:
    return 0.5 * k * k * BUBBLE_CPU


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: QsortParams):
    meter.mark()
    arr = initial_keys(params)
    stack: List[Tuple[int, int]] = [(0, params.nkeys)]
    while stack:
        lo, hi = stack.pop()
        k = hi - lo
        if k <= params.threshold:
            arr[lo:hi] = np.sort(arr[lo:hi], kind="stable")
            meter.compute(bubble_cost(k))
            continue
        rearranged, eq_lo, eq_hi = partition(arr[lo:hi])
        arr[lo:hi] = rearranged
        meter.compute(partition_cost(k))
        stack.append((lo, lo + eq_lo))
        stack.append((lo + eq_hi, hi))
    return arr


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
_LOCK_QUEUE = 1


def tmk_main(proc, params: QsortParams):
    tmk = proc.tmk
    arr = tmk.shared_array("qs_array", (params.nkeys,), np.int32)
    queue = tmk.shared_array("qs_queue", (MAX_QUEUE, 2), np.int32)
    # top-of-queue index and outstanding-task count, one page.
    meta = tmk.shared_array("qs_meta", (2,), np.int32)
    if tmk.pid == 0:
        yield from arr.write_g(slice(0, params.nkeys), initial_keys(params))
        yield from queue.write_g((slice(0, 1), slice(None)),
                                 [[0, params.nkeys]])
        yield from meta.write_g(slice(0, 2), [1, 1])  # qtop=1, outstanding=1
    yield from tmk.barrier_g(0)
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    while True:
        yield from tmk.lock_acquire_g(_LOCK_QUEUE)
        counters = yield from meta.read_g(slice(0, 2))
        qtop, outstanding = (int(v) for v in counters)
        if outstanding == 0:
            yield from tmk.lock_release_g(_LOCK_QUEUE)
            break
        if qtop == 0:
            yield from tmk.lock_release_g(_LOCK_QUEUE)
            proc.compute(POLL_BACKOFF)
            continue
        task = yield from queue.read_g((slice(qtop - 1, qtop), slice(None)))
        lo, hi = (int(v) for v in task.reshape(-1))
        yield from meta.set_g(0, qtop - 1)
        yield from tmk.lock_release_g(_LOCK_QUEUE)

        k = hi - lo
        if k <= params.threshold:
            values = yield from arr.read_g(slice(lo, hi))
            values = values.copy()
            yield from arr.write_g(slice(lo, hi), np.sort(values, kind="stable"))
            proc.compute(bubble_cost(k))
            yield from tmk.lock_acquire_g(_LOCK_QUEUE)
            left = yield from meta.get_g(1)
            yield from meta.set_g(1, int(left) - 1)
            yield from tmk.lock_release_g(_LOCK_QUEUE)
        else:
            values = yield from arr.read_g(slice(lo, hi))
            values = values.copy()
            rearranged, eq_lo, eq_hi = partition(values)
            yield from arr.write_g(slice(lo, hi), rearranged)
            proc.compute(partition_cost(k))
            yield from tmk.lock_acquire_g(_LOCK_QUEUE)
            qtop = yield from meta.get_g(0)
            qtop = int(qtop)
            if qtop + 2 > MAX_QUEUE:
                raise RuntimeError("work queue overflow")
            yield from queue.write_g((slice(qtop, qtop + 2), slice(None)),
                                     [[lo, lo + eq_lo], [lo + eq_hi, hi]])
            left = yield from meta.get_g(1)
            yield from meta.write_g(slice(0, 2), [qtop + 2, int(left) + 1])
            yield from tmk.lock_release_g(_LOCK_QUEUE)
    yield from tmk.barrier_g(1)
    # Out-of-band result collection: each processor's copy of the pages it
    # holds valid is not the full array, so only processor 0 re-reads it.
    if tmk.pid == 0:
        proc.cluster.stop_measurement(proc)
        out = yield from arr.read_g(slice(0, params.nkeys))
        return out.copy()
    return None


# ----------------------------------------------------------------------
# PVM (master/slave)
# ----------------------------------------------------------------------
_TAG_REQ = 30
_TAG_WORK = 31
_TAG_LEAF = 32
_TAG_SPLIT = 33
_TAG_DONE = 34


def _master(proc, params: QsortParams):
    pvm = proc.pvm
    n = pvm.nprocs
    arr = initial_keys(params)
    queue: List[Tuple[int, int]] = [(0, params.nkeys)]
    outstanding = 1
    pending: List[int] = []  # slaves waiting for work
    done_sent = 0

    def integrate(buf) -> None:
        nonlocal outstanding
        header = buf.upkint(2)
        lo, hi = int(header[0]), int(header[1])
        if buf.tag == _TAG_LEAF:
            arr[lo:hi] = buf.upkint(hi - lo)
            outstanding -= 1
        else:
            split = buf.upkint(2)
            arr[lo:hi] = buf.upkint(hi - lo)
            queue.append((lo, lo + int(split[0])))
            queue.append((lo + int(split[1]), hi))
            outstanding += 1

    def send_work(slave: int):
        lo, hi = queue.pop()
        buf = pvm.initsend()
        buf.pkint([lo, hi])
        buf.pkint(arr[lo:hi])
        yield from pvm.send_g(slave, _TAG_WORK, buf)

    def poll():
        """Drain arrivals and serve waiting slaves (the master half of the
        time-shared master+slave pair on this processor)."""
        while True:
            buf = yield from pvm.nrecv_g(-1, -1)
            if buf is None:
                break
            if buf.tag == _TAG_REQ:
                buf.upkint(1)
                pending.append(buf.src)
            else:
                integrate(buf)
        while pending and queue and outstanding > 0:
            yield from send_work(pending.pop(0))

    while outstanding > 0 or done_sent < n - 1:
        yield from poll()
        if outstanding == 0:
            while pending:
                buf = pvm.initsend()
                buf.pkint([0])
                yield from pvm.send_g(pending.pop(0), _TAG_DONE, buf)
                done_sent += 1
            if done_sent < n - 1:
                buf = yield from pvm.recv_g(-1, _TAG_REQ)
                buf.upkint(1)
                pending.append(buf.src)
            continue
        if queue and not pending:
            # No requests waiting: the master's co-located slave works,
            # time-sharing with request service.
            lo, hi = queue.pop()
            k = hi - lo
            if k <= params.threshold:
                arr[lo:hi] = np.sort(arr[lo:hi], kind="stable")
                yield from compute_polled(proc, bubble_cost(k), poll)
                outstanding -= 1
            else:
                rearranged, eq_lo, eq_hi = partition(arr[lo:hi])
                arr[lo:hi] = rearranged
                yield from compute_polled(proc, partition_cost(k), poll)
                queue.append((lo, lo + eq_lo))
                queue.append((lo + eq_hi, hi))
                outstanding += 1
        elif not queue:
            # Work is all in flight; block for the next result.
            buf = yield from pvm.recv_g(-1, -1)
            if buf.tag == _TAG_REQ:
                buf.upkint(1)
                pending.append(buf.src)
            else:
                integrate(buf)
    return arr


def _slave(proc, params: QsortParams):
    pvm = proc.pvm
    while True:
        buf = pvm.initsend()
        buf.pkint([pvm.mytid])
        yield from pvm.send_g(0, _TAG_REQ, buf)
        reply = yield from pvm.recv_g(0, -1)
        if reply.tag == _TAG_DONE:
            reply.upkint(1)
            return
        header = reply.upkint(2)
        lo, hi = int(header[0]), int(header[1])
        values = reply.upkint(hi - lo)
        k = hi - lo
        out = pvm.initsend()
        out.pkint([lo, hi])
        if k <= params.threshold:
            values = np.sort(values, kind="stable")
            proc.compute(bubble_cost(k))
            out.pkint(values)
            yield from pvm.send_g(0, _TAG_LEAF, out)
        else:
            rearranged, eq_lo, eq_hi = partition(values)
            proc.compute(partition_cost(k))
            out.pkint([eq_lo, eq_hi])
            out.pkint(rearranged)
            yield from pvm.send_g(0, _TAG_SPLIT, out)


def pvm_main(proc, params: QsortParams):
    pvm = proc.pvm
    if pvm.mytid == 0:
        proc.cluster.start_measurement(proc)
        result = yield from _master(proc, params)
        return result
    yield from _slave(proc, params)
    return None


def _verify(par, seq) -> bool:
    return np.array_equal(par, seq)


APP = register(AppSpec(
    name="qsort",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    segment_bytes=1 << 21,
))
