"""ILINK -- genetic linkage analysis (the paper's "problem of practical size").

ILINK locates disease genes on chromosomes by maximizing the likelihood of
observed pedigrees.  The main data structure is a pool ("bank") of
*genarrays* -- per-person vectors holding the probability of each genotype.
Genarrays are sparse, so an index of nonzero entries accompanies each.
"A bank of genarrays large enough to accommodate the biggest nuclear
family is allocated at the beginning of the program, and the same bank is
reused for each nuclear family", being *re-initialized* per family -- the
source of the paper's third TreadMarks overhead, diff accumulation.

Parallelization (Dwarkadas et al.): updates to one person's genarray are
split by assigning the nonzero elements of the parent's genarray to
processors *round-robin*; every processor computes its share's
contribution, and the master sums the per-processor contributions.

* **TreadMarks** costs identified by the paper (Figure 12): (1) the
  genarray spans several pages, so reading it costs one diff
  request/response per page where PVM uses a single message; (2) the
  round-robin split means a processor faults in whole pages containing
  mostly *other* processors' elements -- false sharing; (3) bank
  re-initialization makes acquirers pull diffs from older families.
  Diffing automatically ships only nonzero (changed) elements.
* **PVM**: the master sends each slave exactly its assigned nonzero
  elements and receives sparse contributions back -- two messages per
  slave per family.

The genetics here are synthetic (a transmission kernel over a genotype
bit-string with recombination fraction theta, deterministic penetrance
masks per family) but the data layout, sparsity structure, work
distribution, and communication pattern follow the real parallel ILINK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["IlinkParams", "APP"]

#: Virtual CPU seconds per (nonzero element x output element) update.
ELEM_CPU = 80e-6
#: Virtual CPU seconds for the master's per-family bookkeeping per element.
INIT_CPU = 0.2e-6
#: Recombination fraction.
_THETA = 0.16


@dataclass(frozen=True)
class IlinkParams:
    """``genarray_len`` must be a power of two (genotypes are bit
    strings); ``nonzeros`` parent entries drive each family update."""

    genarray_len: int = 2048
    nonzeros: int = 96
    #: Support size of each family's penetrance mask (output sparsity).
    mask_size: int = 384
    families: int = 16
    seed: int = 602214

    @classmethod
    def tiny(cls) -> "IlinkParams":
        return cls(genarray_len=256, nonzeros=16, mask_size=48, families=4)

    @classmethod
    def bench(cls) -> "IlinkParams":
        return cls()

    @classmethod
    def paper(cls) -> "IlinkParams":
        """CLP data set scale: bigger pedigree, more families."""
        return cls(genarray_len=4096, nonzeros=128, mask_size=512,
                   families=32)


def _popcount_table(bits: int) -> np.ndarray:
    table = np.zeros(1 << bits, dtype=np.int64)
    for b in range(bits):
        table[(np.arange(1 << bits) >> b) & 1 == 1] += 1
    return table


class Pedigree:
    """Deterministic synthetic pedigree shared by all versions."""

    def __init__(self, params: IlinkParams) -> None:
        self.params = params
        self.bits = int(np.log2(params.genarray_len))
        if (1 << self.bits) != params.genarray_len:
            raise ValueError("genarray_len must be a power of two")
        self._pop = _popcount_table(self.bits)
        rng = np.random.Generator(np.random.PCG64(params.seed))
        self.masks = [np.sort(rng.choice(params.genarray_len,
                                         size=params.mask_size,
                                         replace=False))
                      for _ in range(params.families)]
        self.penetrance = [rng.uniform(0.1, 1.0, size=params.mask_size)
                           for _ in range(params.families)]
        self.first_nonzeros = np.sort(rng.choice(
            params.genarray_len, size=params.nonzeros, replace=False))
        self.first_values = rng.uniform(0.1, 1.0, size=params.nonzeros)

    def transmission(self, i: int, mask: np.ndarray) -> np.ndarray:
        """P(child genotype j | parent genotype i) over ``mask`` columns:
        theta^popcount(i xor j) * (1-theta)^(bits - popcount)."""
        flips = self._pop[np.bitwise_xor(mask, i)]
        return (_THETA ** flips) * ((1.0 - _THETA) ** (self.bits - flips))

    def contribution(self, family: int, indices: np.ndarray,
                     values: np.ndarray) -> Tuple[np.ndarray, float]:
        """Contribution of parent nonzeros (indices, values) to the family
        posterior over the family's mask.  Returns (mask-length vector,
        virtual cost)."""
        mask = self.masks[family]
        pen = self.penetrance[family]
        out = np.zeros(mask.size)
        for i, v in zip(indices, values):
            out += v * self.transmission(int(i), mask)
        out *= pen
        cost = indices.size * mask.size * ELEM_CPU
        return out, cost

    def reduce_family(self, family: int, posterior: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Master step: normalize the posterior and select the next
        family's parent nonzeros (the largest entries)."""
        params = self.params
        mask = self.masks[family]
        total = float(posterior.sum())
        keep = np.sort(np.argsort(posterior)[::-1][: params.nonzeros])
        indices = mask[keep]
        values = posterior[keep] / total
        return indices, values, np.log(total)


def assigned(indices: np.ndarray, worker: int, nprocs: int) -> np.ndarray:
    """Round-robin share of the parent's nonzero positions."""
    return np.arange(indices.size) % nprocs == worker


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: IlinkParams):
    meter.mark()
    ped = Pedigree(params)
    indices, values = ped.first_nonzeros, ped.first_values
    loglik = 0.0
    for family in range(params.families):
        posterior, cost = ped.contribution(family, indices, values)
        meter.compute(cost + params.genarray_len * INIT_CPU)
        indices, values, ll = ped.reduce_family(family, posterior)
        loglik += ll
    return loglik


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
def tmk_main(proc, params: IlinkParams):
    tmk = proc.tmk
    ped = Pedigree(params)
    me, n = tmk.pid, tmk.nprocs
    L = params.genarray_len
    # The shared bank: the parent's genarray (dense, with a nonzero-index
    # header) plus one contribution row per processor.
    parent = tmk.shared_array("ilink_parent", (L,), np.float64)
    pidx = tmk.shared_array("ilink_parent_idx", (params.nonzeros,), np.int64)
    contrib = tmk.shared_array("ilink_contrib", (n, L), np.float64)
    if me == 0:
        dense = np.zeros(L)
        dense[ped.first_nonzeros] = ped.first_values
        yield from parent.write_g(slice(0, L), dense)
        yield from pidx.write_g(slice(0, params.nonzeros), ped.first_nonzeros)
    yield from tmk.barrier_g(0)
    if me == 0:
        proc.cluster.start_measurement(proc)
    loglik = 0.0
    bid = 1
    for family in range(params.families):
        # Everyone reads the parent's nonzeros; page-granular faults fetch
        # whole pages, i.e. also the elements assigned to other processors
        # (the paper's false-sharing observation).
        indices = yield from pidx.read_g(slice(0, params.nonzeros))
        indices = np.asarray(indices)
        share = assigned(indices, me, n)
        my_idx = indices[share]
        full = yield from parent.read_g(slice(0, L))
        my_vals = np.asarray(full)[my_idx]
        out, cost = ped.contribution(family, my_idx, my_vals)
        proc.compute(cost)
        # Write my (sparse) contribution into my bank row; diffing ships
        # only the nonzero elements automatically.
        mask = ped.masks[family]
        row = np.zeros(L)
        row[mask] = out
        yield from contrib.write_g((slice(me, me + 1), slice(None)),
                                   row[None, :])
        yield from tmk.barrier_g(bid); bid += 1
        if me == 0:
            # Master sums the contributions and re-initializes the bank
            # for the next family (the diff-accumulation source).
            posterior = np.zeros(mask.size)
            for w in range(n):
                wrow = yield from contrib.read_g((slice(w, w + 1),
                                                  slice(None)))
                posterior += np.asarray(wrow).reshape(-1)[mask]
            proc.compute(params.genarray_len * INIT_CPU)
            indices, values, ll = ped.reduce_family(family, posterior)
            loglik += ll
            dense = np.zeros(L)
            dense[indices] = values
            yield from parent.write_g(slice(0, L), dense)
            yield from pidx.write_g(slice(0, params.nonzeros), indices)
        yield from tmk.barrier_g(bid); bid += 1
    return loglik if me == 0 else None


# ----------------------------------------------------------------------
# PVM (master/slave)
# ----------------------------------------------------------------------
_TAG_WORK = 80
_TAG_CONTRIB = 81


def pvm_main(proc, params: IlinkParams):
    pvm = proc.pvm
    me, n = pvm.mytid, pvm.nprocs
    ped = Pedigree(params)
    if me == 0:
        proc.cluster.start_measurement(proc)
        indices, values = ped.first_nonzeros, ped.first_values
        loglik = 0.0
        for family in range(params.families):
            # Send each slave exactly its assigned nonzeros (sparse).
            for w in range(1, n):
                share = assigned(indices, w, n)
                buf = pvm.initsend()
                buf.pkint([int(share.sum())])
                buf.pklong(indices[share])
                buf.pkdouble(values[share])
                yield from pvm.send_g(w, _TAG_WORK, buf)
            share = assigned(indices, 0, n)
            posterior, cost = ped.contribution(family, indices[share],
                                               values[share])
            proc.compute(cost)
            for _ in range(n - 1):
                got = yield from pvm.recv_g(-1, _TAG_CONTRIB)
                posterior = posterior + got.upkdouble(params.mask_size)
            proc.compute(params.genarray_len * INIT_CPU)
            indices, values, ll = ped.reduce_family(family, posterior)
            loglik += ll
        return loglik
    for family in range(params.families):
        got = yield from pvm.recv_g(0, _TAG_WORK)
        count = int(got.upkint(1)[0])
        my_idx = got.upklong(count)
        my_vals = got.upkdouble(count)
        out, cost = ped.contribution(family, my_idx, my_vals)
        proc.compute(cost)
        buf = pvm.initsend()
        buf.pkdouble(out)
        yield from pvm.send_g(0, _TAG_CONTRIB, buf)
    return None


def _verify(par, seq) -> bool:
    return abs(par - seq) <= 1e-9 * max(1.0, abs(seq))


APP = register(AppSpec(
    name="ilink",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    segment_bytes=1 << 21,
))
