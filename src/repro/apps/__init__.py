"""The nine benchmark applications, each in three versions.

Every application module provides a parameter dataclass with ``tiny``
(tests), ``bench`` (default benchmark), and ``paper`` (the paper's problem
size) presets, plus three implementations sharing the same computational
kernels:

* ``sequential(meter, params)`` -- no PVM/TreadMarks calls, charges virtual
  compute time to a meter (the Table 1 baseline);
* ``tmk_main(proc, params)`` -- the TreadMarks port (``proc.tmk``);
* ``pvm_main(proc, params)`` -- the PVM port (``proc.pvm``).

Parallel results are verified against the sequential version -- the
correctness proof of the DSM protocol and message-passing ports.
"""

from repro.apps import (barnes_hut, ep, fft3d, ilink, is_sort, qsort, sor,
                        tsp, water)
from repro.apps.base import (APPS, AppSpec, ParallelResult, SeqMeter,
                             SeqResult, get_app, run_parallel, run_sequential)

__all__ = [
    "APPS",
    "AppSpec",
    "ParallelResult",
    "SeqMeter",
    "SeqResult",
    "barnes_hut",
    "ep",
    "fft3d",
    "get_app",
    "ilink",
    "is_sort",
    "qsort",
    "run_parallel",
    "run_sequential",
    "sor",
    "tsp",
    "water",
]
