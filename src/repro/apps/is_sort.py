"""IS -- Integer Sort (NAS benchmark): bucket-sort key ranking.

"The parallel version of IS divides up the keys among the processors.
First each processor counts its keys and writes the result in a private
array of buckets.  Then the values in the private buckets are summed up.
Finally all processors read the sum and rank their keys."

* **TreadMarks**: a shared bucket array; each processor locks it, merges
  its private counts, releases, waits at a barrier, then reads the final
  sums.  Because every processor's merge *completely overwrites* the
  previous values, a lock acquirer receives every preceding processor's
  diff even though they overlap -- *diff accumulation*: per iteration
  TreadMarks moves ~ n*(n-1)*b bytes versus PVM's 2*(n-1)*b.
* **PVM**: processors form a chain (0 sends its buckets to 1, which adds
  its own and forwards, ...); the last processor computes the final sums
  and broadcasts them: 2*(n-1) messages per iteration.

Two bucket sizes (paper Figures 4 and 5): IS-Small's bucket array fits in
a page; IS-Large's spans 32 pages, so every TreadMarks access costs 32
diff request/response pairs where PVM uses a single message exchange --
the paper's worst case for TreadMarks (PVM twice as fast).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppSpec, register

__all__ = ["IsParams", "APP"]

#: Virtual CPU seconds per key for the counting pass.
COUNT_CPU = 0.8e-6
#: Virtual CPU seconds per key for the ranking pass.
RANK_CPU = 0.8e-6
#: Virtual CPU seconds per bucket for array merges / prefix sums.
BUCKET_CPU = 0.02e-6


@dataclass(frozen=True)
class IsParams:
    """``2**log2_keys`` keys in ``[0, 2**log2_bmax)``, ranked for
    ``iterations`` repetitions."""

    log2_keys: int = 18
    log2_bmax: int = 10
    iterations: int = 10
    seed: int = 314159

    @classmethod
    def tiny(cls, large: bool = False) -> "IsParams":
        return cls(log2_keys=12, log2_bmax=15 if large else 7, iterations=3)

    @classmethod
    def bench_small(cls) -> "IsParams":
        return cls(log2_keys=20, log2_bmax=10, iterations=10)

    @classmethod
    def bench_large(cls) -> "IsParams":
        return cls(log2_keys=20, log2_bmax=15, iterations=10)

    @classmethod
    def paper_small(cls) -> "IsParams":
        """N = 2**20 keys, small bucket range."""
        return cls(log2_keys=20, log2_bmax=10, iterations=10)

    @classmethod
    def paper_large(cls) -> "IsParams":
        """N = 2**20 keys, 2**15-entry bucket array (32 pages)."""
        return cls(log2_keys=20, log2_bmax=15, iterations=10)

    @property
    def nkeys(self) -> int:
        return 1 << self.log2_keys

    @property
    def bmax(self) -> int:
        return 1 << self.log2_bmax


def all_keys(params: IsParams) -> np.ndarray:
    """The full key array (identical in every version)."""
    rng = np.random.Generator(np.random.PCG64(params.seed))
    return rng.integers(0, params.bmax, size=params.nkeys, dtype=np.int32)


def block_keys(params: IsParams, pid: int, nprocs: int) -> np.ndarray:
    """The contiguous key block owned by ``pid``."""
    lo = pid * params.nkeys // nprocs
    hi = (pid + 1) * params.nkeys // nprocs
    return all_keys(params)[lo:hi]


def count_keys(keys: np.ndarray, bmax: int) -> np.ndarray:
    return np.bincount(keys, minlength=bmax).astype(np.int32)


def count_cost(params: IsParams, nkeys_local: int) -> float:
    return nkeys_local * COUNT_CPU + params.bmax * BUCKET_CPU


def rank_cost(params: IsParams, nkeys_local: int) -> float:
    return nkeys_local * RANK_CPU + params.bmax * BUCKET_CPU


def rank_checksum(buckets: np.ndarray, keys: np.ndarray) -> int:
    """Sum of the exclusive-prefix ranks of ``keys`` (verification value;
    additive across disjoint key blocks, so parallel partials sum to the
    sequential total)."""
    buckets = np.asarray(buckets, dtype=np.int64)
    prefix = np.cumsum(buckets) - buckets
    return int(prefix[keys].sum())


# ----------------------------------------------------------------------
# Sequential
# ----------------------------------------------------------------------
def sequential(meter, params: IsParams):
    meter.mark()
    keys = all_keys(params)
    buckets = np.zeros(params.bmax, dtype=np.int32)
    checksum = 0
    for _ in range(params.iterations):
        buckets = count_keys(keys, params.bmax)
        meter.compute(count_cost(params, keys.size))
        checksum += rank_checksum(buckets, keys)
        meter.compute(rank_cost(params, keys.size))
    return buckets.tolist(), checksum


# ----------------------------------------------------------------------
# TreadMarks
# ----------------------------------------------------------------------
_LOCK_BUCKETS = 3


def tmk_main(proc, params: IsParams):
    tmk = proc.tmk
    shared = tmk.shared_array("is_buckets", (params.bmax,), np.int32)
    # Per-iteration updater counter, on its own page, same lock.
    meta = tmk.shared_array("is_meta", (1,), np.int32)
    keys = block_keys(params, tmk.pid, tmk.nprocs)
    yield from tmk.barrier_g(0)
    if tmk.pid == 0:
        proc.cluster.start_measurement(proc)
    checksum = 0
    for it in range(params.iterations):
        private = count_keys(keys, params.bmax)
        proc.compute(count_cost(params, keys.size))
        yield from tmk.lock_acquire_g(_LOCK_BUCKETS)
        updater = yield from meta.get_g(0)
        if int(updater) == 0:
            # First updater of this iteration overwrites the stale counts
            # (the "complete overwrite" the paper's diff-accumulation
            # analysis describes).
            yield from shared.write_g(slice(0, params.bmax), private)
        else:
            yield from shared.add_g(slice(0, params.bmax), private)
        updater = yield from meta.get_g(0)
        yield from meta.set_g(0, (int(updater) + 1) % tmk.nprocs)
        proc.compute(params.bmax * BUCKET_CPU)
        yield from tmk.lock_release_g(_LOCK_BUCKETS)
        yield from tmk.barrier_g(1 + it)
        # Benign race: ranking uses the barrier-time snapshot while the
        # next iteration's first updater may already be overwriting the
        # counts.  Under LRC those writes cannot reach this copy before
        # the next barrier, so every processor ranks the same values.
        buckets = yield from shared.read_racy_g(slice(0, params.bmax))
        checksum += rank_checksum(buckets, keys)
        proc.compute(rank_cost(params, keys.size))
    final = yield from shared.read_g(slice(0, params.bmax))
    final = final.copy()
    return final.tolist(), checksum


# ----------------------------------------------------------------------
# PVM
# ----------------------------------------------------------------------
_TAG_CHAIN = 20
_TAG_FINAL = 21


def pvm_main(proc, params: IsParams):
    pvm = proc.pvm
    me, n = pvm.mytid, pvm.nprocs
    if me == 0:
        proc.cluster.start_measurement(proc)
    keys = block_keys(params, me, n)
    checksum = 0
    buckets = np.zeros(params.bmax, dtype=np.int32)
    for _ in range(params.iterations):
        private = count_keys(keys, params.bmax)
        proc.compute(count_cost(params, keys.size))
        if n == 1:
            buckets = private
        elif me == n - 1:
            got = yield from pvm.recv_g(me - 1, _TAG_CHAIN)
            buckets = got.upkint(params.bmax).astype(np.int32) + private
            proc.compute(params.bmax * BUCKET_CPU)
            buf = pvm.initsend()
            buf.pkint(buckets)
            yield from pvm.mcast_g(
                [p for p in range(n) if p != me], _TAG_FINAL, buf)
        else:
            if me == 0:
                partial = private
            else:
                got = yield from pvm.recv_g(me - 1, _TAG_CHAIN)
                partial = got.upkint(params.bmax).astype(np.int32) + private
                proc.compute(params.bmax * BUCKET_CPU)
            buf = pvm.initsend()
            buf.pkint(partial)
            yield from pvm.send_g(me + 1, _TAG_CHAIN, buf)
            got = yield from pvm.recv_g(n - 1, _TAG_FINAL)
            buckets = got.upkint(params.bmax).astype(np.int32)
        checksum += rank_checksum(buckets, keys)
        proc.compute(rank_cost(params, keys.size))
    return buckets.tolist(), checksum


def _collect(results):
    """Counts from processor 0; rank checksums summed across processors
    (each processor ranks only its own keys)."""
    return list(results[0][0]), sum(r[1] for r in results)


def _verify(par, seq) -> bool:
    return list(par[0]) == list(seq[0]) and par[1] == seq[1]


APP = register(AppSpec(
    name="is",
    sequential=sequential,
    tmk_main=tmk_main,
    pvm_main=pvm_main,
    verify=_verify,
    collect=_collect,
    segment_bytes=1 << 19,
))
