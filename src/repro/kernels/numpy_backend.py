"""The vectorized numpy backend (the default).

Run detection is ``np.flatnonzero`` on word inequality plus boundary
arithmetic on the index vector; no per-word Python.  The batch variant
concatenates the whole batch into one buffer pair so the comparison,
the changed-word scan, *and* the run segmentation are each a single
numpy call for the entire interval close -- the per-page fixed cost
that made the old stacked implementation a wash (0.98x) is paid once
per batch instead of once per page.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels.interface import WORD, KernelBackend, Runs

__all__ = ["BACKEND"]

#: Below this many pages, a Python loop beats numpy's fixed per-call cost.
_SCAN_LOOP_MAX = 8


def _runs_from_words(changed: np.ndarray, current: np.ndarray) -> Runs:
    """Word-index vector -> byte-granular runs over ``current``.

    One ``tobytes`` for the whole page, then plain ``bytes`` slicing per
    run: a bytes slice is several times cheaper than an ndarray slice +
    ``tobytes``, and the single page-sized memcpy is noise.
    """
    gaps = np.flatnonzero(changed[1:] - changed[:-1] > 1)
    firsts = np.empty(gaps.size + 1, dtype=np.intp)
    lasts = np.empty(gaps.size + 1, dtype=np.intp)
    firsts[0] = changed[0]
    firsts[1:] = changed[gaps + 1]
    lasts[-1] = changed[-1]
    lasts[:-1] = changed[gaps]
    buf = current.tobytes()
    return tuple(
        (first * WORD, buf[first * WORD: last * WORD + WORD])
        for first, last in zip(firsts.tolist(), lasts.tolist()))


def make_diff(current, twin) -> Runs:
    changed = np.flatnonzero(current.view(np.uint32) != twin.view(np.uint32))
    if changed.size == 0:
        return ()
    return _runs_from_words(changed, current)


def make_diff_batch(currents: Sequence, twins: Sequence) -> List[Runs]:
    n = len(currents)
    if n == 0:
        return []
    if n == 1:
        return [make_diff(currents[0], twins[0])]
    words_per_page = currents[0].size // WORD
    # One contiguous buffer pair for the whole batch: the copies are
    # memcpys, and everything after them is one numpy call per step.
    big_cur = np.concatenate(currents)
    big_twin = np.concatenate(twins)
    changed = np.flatnonzero(big_cur.view(np.uint32)
                             != big_twin.view(np.uint32))
    out: List[Runs] = [()] * n
    if changed.size == 0:
        return out
    # Segment the global changed-word vector, forcing a break wherever a
    # page boundary is crossed so no run spans two pages.
    page_of = changed // words_per_page
    breaks = np.flatnonzero((changed[1:] - changed[:-1] > 1)
                            | (page_of[1:] != page_of[:-1]))
    firsts = np.empty(breaks.size + 1, dtype=np.intp)
    lasts = np.empty(breaks.size + 1, dtype=np.intp)
    firsts[0] = changed[0]
    firsts[1:] = changed[breaks + 1]
    lasts[-1] = changed[-1]
    lasts[:-1] = changed[breaks]
    pages = (firsts // words_per_page).tolist()
    buf = big_cur.tobytes()
    page_bytes = words_per_page * WORD
    runs_of: List[list] = [[] for _ in range(n)]
    for first, last, page in zip(firsts.tolist(), lasts.tolist(), pages):
        start = first * WORD
        runs_of[page].append((start - page * page_bytes,
                              buf[start: last * WORD + WORD]))
    for i, runs in enumerate(runs_of):
        if runs:
            out[i] = tuple(runs)
    return out


def apply_diff(page_view, runs: Runs) -> int:
    # A memoryview write per run beats frombuffer + ndarray setitem.
    view = memoryview(page_view).cast("B")
    written = 0
    for offset, data in runs:
        n = len(data)
        view[offset: offset + n] = data
        written += n
    return written


def apply_diff_batch(page_view, runs_list: Sequence[Runs]) -> int:
    view = memoryview(page_view).cast("B")
    written = 0
    for runs in runs_list:
        for offset, data in runs:
            n = len(data)
            view[offset: offset + n] = data
            written += n
    return written


def twin_compare(current, twin) -> bool:
    return bool(np.array_equal(current, twin))


def fault_scan(valid, lo: int, hi: int) -> List[int]:
    if hi - lo <= _SCAN_LOOP_MAX:
        return [page for page in range(lo, hi) if not valid[page]]
    window = np.frombuffer(valid, dtype=np.uint8)[lo:hi]
    return [lo + page for page in np.flatnonzero(window == 0).tolist()]


BACKEND = KernelBackend(
    name="numpy",
    make_diff=make_diff,
    make_diff_batch=make_diff_batch,
    apply_diff=apply_diff,
    apply_diff_batch=apply_diff_batch,
    twin_compare=twin_compare,
    fault_scan=fault_scan,
)
