"""repro.kernels -- pluggable page-op kernels behind a frozen interface.

The DSM hot path (diff creation, diff application, twin comparison,
fault checks) is expressed as six pure functions over raw byte buffers
(:mod:`repro.kernels.interface`).  Three backends implement them:

- ``pure``     -- the pure-Python reference; canonical semantics.
- ``numpy``    -- vectorized; the default.
- ``compiled`` -- optional C extension; falls back to ``numpy`` when the
  extension has not been built (``tools/build_kernels.py`` builds it).

Backend choice is a host-side optimization only: every backend is
byte-identical to ``pure`` (asserted by ``tests/kernels``), so simulated
results, golden traces, and cache keys never depend on it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.kernels import numpy_backend, pure
from repro.kernels.interface import RUN_HEADER_BYTES, WORD, KernelBackend, Runs

__all__ = [
    "KERNEL_CHOICES",
    "KernelBackend",
    "RUN_HEADER_BYTES",
    "Runs",
    "WORD",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: Names accepted by ``RunConfig.kernels`` / ``--kernels``.
KERNEL_CHOICES: Tuple[str, ...] = ("pure", "numpy", "compiled")

#: The backend used when nothing is specified.
DEFAULT_BACKEND = "numpy"

_REGISTRY: Dict[str, KernelBackend] = {
    "pure": pure.BACKEND,
    "numpy": numpy_backend.BACKEND,
}


def get_backend(name: str = DEFAULT_BACKEND) -> KernelBackend:
    """Resolve a backend by name.

    ``compiled`` falls back to ``numpy`` when the extension is unbuilt,
    so requesting it is always safe; any other unknown name raises.
    """
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    if name == "compiled":
        from repro.kernels import compiled

        if compiled.BACKEND is not None:
            _REGISTRY["compiled"] = compiled.BACKEND
            return compiled.BACKEND
        return _REGISTRY["numpy"]
    raise ValueError(
        f"unknown kernels backend {name!r}; choose from {sorted(available_backends())}"
    )


def available_backends() -> Tuple[str, ...]:
    """Names that :func:`get_backend` accepts right now.

    ``compiled`` is always listed (it resolves to ``numpy`` if unbuilt),
    plus anything added via :func:`register_backend`.
    """
    names = set(_REGISTRY) | set(KERNEL_CHOICES)
    return tuple(sorted(names))


def register_backend(backend: KernelBackend) -> None:
    """Register a custom backend under ``backend.name``.

    Re-registering a built-in name is rejected; custom backends are
    subject to the same byte-identity contract as the built-ins.
    """
    if not isinstance(backend, KernelBackend):
        raise TypeError("register_backend expects a KernelBackend")
    if backend.name in ("pure", "numpy", "compiled"):
        raise ValueError(f"cannot replace built-in backend {backend.name!r}")
    _REGISTRY[backend.name] = backend
