"""The pure-Python reference backend.

This is the canonical statement of what every kernel must compute: no
numpy in the logic, just bytes and loops.  It is deliberately simple --
the ``numpy`` and ``compiled`` backends are proven byte-identical to it
by the property suite in ``tests/kernels``, so any question about edge
cases ("what does a run at the page's last word look like?") is settled
by reading this file.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.kernels.interface import WORD, KernelBackend, Runs

__all__ = ["BACKEND"]


def _as_bytes(buf) -> bytes:
    return bytes(memoryview(buf).cast("B"))


def make_diff(current, twin) -> Runs:
    cur = _as_bytes(current)
    tw = _as_bytes(twin)
    if cur == tw:
        return ()
    runs = []
    start = None
    for off in range(0, len(cur), WORD):
        if cur[off:off + WORD] != tw[off:off + WORD]:
            if start is None:
                start = off
        elif start is not None:
            runs.append((start, cur[start:off]))
            start = None
    if start is not None:
        runs.append((start, cur[start:]))
    return tuple(runs)


def make_diff_batch(currents: Sequence, twins: Sequence) -> List[Runs]:
    return [make_diff(c, t) for c, t in zip(currents, twins)]


def apply_diff(page_view, runs: Runs) -> int:
    view = memoryview(page_view).cast("B")
    written = 0
    for offset, data in runs:
        n = len(data)
        view[offset: offset + n] = data
        written += n
    return written


def apply_diff_batch(page_view, runs_list: Sequence[Runs]) -> int:
    view = memoryview(page_view).cast("B")
    written = 0
    for runs in runs_list:
        for offset, data in runs:
            n = len(data)
            view[offset: offset + n] = data
            written += n
    return written


def twin_compare(current, twin) -> bool:
    return _as_bytes(current) == _as_bytes(twin)


def fault_scan(valid, lo: int, hi: int) -> List[int]:
    return [page for page in range(lo, hi) if not valid[page]]


BACKEND = KernelBackend(
    name="pure",
    make_diff=make_diff,
    make_diff_batch=make_diff_batch,
    apply_diff=apply_diff,
    apply_diff_batch=apply_diff_batch,
    twin_compare=twin_compare,
    fault_scan=fault_scan,
)
