/* Compiled page-op kernels: the `compiled` backend's hot functions.
 *
 * Mirrors the pure-Python reference in repro/kernels/pure.py exactly --
 * word-granular (4-byte) run detection with memcmp, in-place patching,
 * byte-equality twin compare, and an invalid-page scan.  Built on demand
 * by tools/build_kernels.py; the registry falls back to the numpy
 * backend when this module is absent, so nothing imports it directly.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>

#define WORD 4

/* ---- helpers ---------------------------------------------------------- */

static int
get_ro_buffer(PyObject *obj, Py_buffer *view, const char *what)
{
    if (PyObject_GetBuffer(obj, view, PyBUF_SIMPLE) != 0) {
        PyErr_Format(PyExc_TypeError, "%s does not expose a C-contiguous buffer", what);
        return -1;
    }
    return 0;
}

/* Append runs for one page (cur/twin of length n) to list `out` as
 * (offset, bytes) tuples.  Returns 0 on success, -1 on error. */
static int
diff_one_page(const unsigned char *cur, const unsigned char *twin,
              Py_ssize_t n, PyObject *out)
{
    Py_ssize_t off = 0;
    while (off < n) {
        if (memcmp(cur + off, twin + off, WORD) != 0) {
            Py_ssize_t start = off;
            off += WORD;
            while (off < n && memcmp(cur + off, twin + off, WORD) != 0)
                off += WORD;
            {
                PyObject *data = PyBytes_FromStringAndSize(
                    (const char *)(cur + start), off - start);
                if (data == NULL)
                    return -1;
                PyObject *run = Py_BuildValue("(nN)", start, data);
                if (run == NULL)
                    return -1;
                if (PyList_Append(out, run) != 0) {
                    Py_DECREF(run);
                    return -1;
                }
                Py_DECREF(run);
            }
        }
        else {
            off += WORD;
        }
    }
    return 0;
}

static PyObject *
runs_tuple_for_page(const unsigned char *cur, const unsigned char *twin,
                    Py_ssize_t n)
{
    if (memcmp(cur, twin, (size_t)n) == 0)
        return PyTuple_New(0);
    PyObject *acc = PyList_New(0);
    if (acc == NULL)
        return NULL;
    if (diff_one_page(cur, twin, n, acc) != 0) {
        Py_DECREF(acc);
        return NULL;
    }
    PyObject *runs = PyList_AsTuple(acc);
    Py_DECREF(acc);
    return runs;
}

/* ---- make_diff / make_diff_batch -------------------------------------- */

static PyObject *
k_make_diff(PyObject *self, PyObject *args)
{
    PyObject *cur_obj, *twin_obj;
    if (!PyArg_ParseTuple(args, "OO", &cur_obj, &twin_obj))
        return NULL;
    Py_buffer cur, twin;
    if (get_ro_buffer(cur_obj, &cur, "current") != 0)
        return NULL;
    if (get_ro_buffer(twin_obj, &twin, "twin") != 0) {
        PyBuffer_Release(&cur);
        return NULL;
    }
    PyObject *runs = NULL;
    if (cur.len != twin.len || cur.len % WORD != 0)
        PyErr_SetString(PyExc_ValueError, "buffer sizes invalid for make_diff");
    else
        runs = runs_tuple_for_page((const unsigned char *)cur.buf,
                                   (const unsigned char *)twin.buf, cur.len);
    PyBuffer_Release(&cur);
    PyBuffer_Release(&twin);
    return runs;
}

static PyObject *
k_make_diff_batch(PyObject *self, PyObject *args)
{
    PyObject *curs, *twins;
    if (!PyArg_ParseTuple(args, "OO", &curs, &twins))
        return NULL;
    PyObject *cur_seq = PySequence_Fast(curs, "currents must be a sequence");
    if (cur_seq == NULL)
        return NULL;
    PyObject *twin_seq = PySequence_Fast(twins, "twins must be a sequence");
    if (twin_seq == NULL) {
        Py_DECREF(cur_seq);
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(cur_seq);
    PyObject *out = PyList_New(n);
    if (out == NULL)
        goto fail;
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_buffer cur, twin;
        if (get_ro_buffer(PySequence_Fast_GET_ITEM(cur_seq, i), &cur,
                          "currents[i]") != 0)
            goto fail;
        if (get_ro_buffer(PySequence_Fast_GET_ITEM(twin_seq, i), &twin,
                          "twins[i]") != 0) {
            PyBuffer_Release(&cur);
            goto fail;
        }
        PyObject *runs = NULL;
        if (cur.len != twin.len || cur.len % WORD != 0)
            PyErr_SetString(PyExc_ValueError,
                            "buffer sizes invalid for make_diff_batch");
        else
            runs = runs_tuple_for_page((const unsigned char *)cur.buf,
                                       (const unsigned char *)twin.buf,
                                       cur.len);
        PyBuffer_Release(&cur);
        PyBuffer_Release(&twin);
        if (runs == NULL)
            goto fail;
        PyList_SET_ITEM(out, i, runs);
    }
    Py_DECREF(cur_seq);
    Py_DECREF(twin_seq);
    return out;
fail:
    Py_DECREF(cur_seq);
    Py_DECREF(twin_seq);
    Py_XDECREF(out);
    return NULL;
}

/* ---- apply_diff / apply_diff_batch ------------------------------------ */

static Py_ssize_t
apply_runs(Py_buffer *page, PyObject *runs)
{
    PyObject *seq = PySequence_Fast(runs, "runs must be a sequence");
    if (seq == NULL)
        return -1;
    Py_ssize_t written = 0;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *run = PySequence_Fast_GET_ITEM(seq, i);
        Py_ssize_t offset;
        PyObject *data_obj;
        if (!PyArg_ParseTuple(run, "nO", &offset, &data_obj))
            goto fail;
        char *data;
        Py_ssize_t len;
        if (PyBytes_AsStringAndSize(data_obj, &data, &len) != 0)
            goto fail;
        if (offset < 0 || offset + len > page->len) {
            PyErr_SetString(PyExc_ValueError, "run exceeds page bounds");
            goto fail;
        }
        memcpy((unsigned char *)page->buf + offset, data, (size_t)len);
        written += len;
    }
    Py_DECREF(seq);
    return written;
fail:
    Py_DECREF(seq);
    return -1;
}

static PyObject *
k_apply_diff(PyObject *self, PyObject *args)
{
    PyObject *page_obj, *runs;
    if (!PyArg_ParseTuple(args, "OO", &page_obj, &runs))
        return NULL;
    Py_buffer page;
    if (PyObject_GetBuffer(page_obj, &page, PyBUF_WRITABLE) != 0)
        return NULL;
    Py_ssize_t written = apply_runs(&page, runs);
    PyBuffer_Release(&page);
    if (written < 0)
        return NULL;
    return PyLong_FromSsize_t(written);
}

static PyObject *
k_apply_diff_batch(PyObject *self, PyObject *args)
{
    PyObject *page_obj, *runs_list;
    if (!PyArg_ParseTuple(args, "OO", &page_obj, &runs_list))
        return NULL;
    Py_buffer page;
    if (PyObject_GetBuffer(page_obj, &page, PyBUF_WRITABLE) != 0)
        return NULL;
    PyObject *seq = PySequence_Fast(runs_list, "runs_list must be a sequence");
    if (seq == NULL) {
        PyBuffer_Release(&page);
        return NULL;
    }
    Py_ssize_t total = 0;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_ssize_t written = apply_runs(&page, PySequence_Fast_GET_ITEM(seq, i));
        if (written < 0) {
            total = -1;
            break;
        }
        total += written;
    }
    Py_DECREF(seq);
    PyBuffer_Release(&page);
    if (total < 0)
        return NULL;
    return PyLong_FromSsize_t(total);
}

/* ---- twin_compare / fault_scan ---------------------------------------- */

static PyObject *
k_twin_compare(PyObject *self, PyObject *args)
{
    PyObject *cur_obj, *twin_obj;
    if (!PyArg_ParseTuple(args, "OO", &cur_obj, &twin_obj))
        return NULL;
    Py_buffer cur, twin;
    if (get_ro_buffer(cur_obj, &cur, "current") != 0)
        return NULL;
    if (get_ro_buffer(twin_obj, &twin, "twin") != 0) {
        PyBuffer_Release(&cur);
        return NULL;
    }
    int same = (cur.len == twin.len
                && memcmp(cur.buf, twin.buf, (size_t)cur.len) == 0);
    PyBuffer_Release(&cur);
    PyBuffer_Release(&twin);
    return PyBool_FromLong(same);
}

static PyObject *
k_fault_scan(PyObject *self, PyObject *args)
{
    PyObject *valid_obj;
    Py_ssize_t lo, hi;
    if (!PyArg_ParseTuple(args, "Onn", &valid_obj, &lo, &hi))
        return NULL;
    Py_buffer valid;
    if (get_ro_buffer(valid_obj, &valid, "valid") != 0)
        return NULL;
    PyObject *out = PyList_New(0);
    if (out == NULL) {
        PyBuffer_Release(&valid);
        return NULL;
    }
    const unsigned char *v = (const unsigned char *)valid.buf;
    if (lo < 0)
        lo = 0;
    if (hi > valid.len)
        hi = valid.len;
    for (Py_ssize_t p = lo; p < hi; p++) {
        if (!v[p]) {
            PyObject *num = PyLong_FromSsize_t(p);
            if (num == NULL || PyList_Append(out, num) != 0) {
                Py_XDECREF(num);
                Py_DECREF(out);
                PyBuffer_Release(&valid);
                return NULL;
            }
            Py_DECREF(num);
        }
    }
    PyBuffer_Release(&valid);
    return out;
}

/* ---- module ----------------------------------------------------------- */

static PyMethodDef kernel_methods[] = {
    {"make_diff", k_make_diff, METH_VARARGS,
     "make_diff(current, twin) -> tuple of (offset, bytes) runs"},
    {"make_diff_batch", k_make_diff_batch, METH_VARARGS,
     "make_diff_batch(currents, twins) -> list of run tuples"},
    {"apply_diff", k_apply_diff, METH_VARARGS,
     "apply_diff(page_view, runs) -> bytes written"},
    {"apply_diff_batch", k_apply_diff_batch, METH_VARARGS,
     "apply_diff_batch(page_view, runs_list) -> bytes written"},
    {"twin_compare", k_twin_compare, METH_VARARGS,
     "twin_compare(current, twin) -> bool (True when identical)"},
    {"fault_scan", k_fault_scan, METH_VARARGS,
     "fault_scan(valid, lo, hi) -> list of invalid page indices"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernels_module = {
    PyModuleDef_HEAD_INIT,
    "repro.kernels._ckernels",
    "Compiled page-op kernels (see repro/kernels/pure.py for semantics).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernels(void)
{
    return PyModule_Create(&ckernels_module);
}
