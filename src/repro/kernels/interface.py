"""The frozen kernel interface: pure functions over raw page buffers.

A *kernel backend* supplies the handful of byte-level operations every
page-based DSM runtime in this repo is built on.  The contract is frozen
so backends are interchangeable and independently testable:

``make_diff(current, twin) -> runs``
    Word-granular run detection: compare two equally-sized uint8 buffers
    (length a multiple of :data:`WORD`) and return a tuple of
    ``(byte_offset, replacement_bytes)`` runs.  A run covers every word
    that changed, extended to word boundaries, with adjacent changed
    words merged.  Equal buffers return ``()``.

``make_diff_batch(currents, twins) -> [runs, ...]``
    Semantically ``[make_diff(c, t) for c, t in zip(currents, twins)]``
    over equally-sized pages; backends may amortize the comparison.

``apply_diff(page_view, runs) -> int``
    Patch a writable uint8 buffer in place; returns bytes written.

``apply_diff_batch(page_view, runs_list) -> int``
    Apply several diffs in list order to one buffer; returns total bytes.

``twin_compare(current, twin) -> bool``
    ``True`` when the buffers are byte-identical (the page is clean).

``fault_scan(valid, lo, hi) -> [page, ...]``
    Indices ``p`` in ``[lo, hi)`` with ``valid[p]`` falsy, ascending.
    ``valid`` is a byte-per-page table (``bytearray`` in practice).

Inputs are validated by the callers (:mod:`repro.tmk.diffs` keeps the
historical error messages); kernels may assume the preconditions hold.
Every backend must be byte-identical to the ``pure`` reference --
``tests/kernels`` asserts this property over random contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["KernelBackend", "RUN_HEADER_BYTES", "WORD", "Runs"]

#: Comparison granularity in bytes (one PA-RISC word).
WORD = 4
#: Bytes of run header (offset + length) counted per run on the wire.
RUN_HEADER_BYTES = 8

#: One diff's payload: ((byte offset, replacement bytes), ...).
Runs = Tuple[Tuple[int, bytes], ...]


@dataclass(frozen=True)
class KernelBackend:
    """One interchangeable implementation of the page-ops contract."""

    name: str
    make_diff: Callable[..., Runs]
    make_diff_batch: Callable[[Sequence, Sequence], List[Runs]]
    apply_diff: Callable[..., int]
    apply_diff_batch: Callable[..., int]
    twin_compare: Callable[..., bool]
    fault_scan: Callable[..., List[int]]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<KernelBackend {self.name!r}>"
