"""The optional compiled backend: a thin wrapper over ``_ckernels``.

``_ckernels`` is a hand-written C extension (``_ckernels.c``) built on
demand by ``tools/build_kernels.py`` -- it is *not* part of a normal
checkout, and this module degrades gracefully when it is absent:
:data:`BACKEND` is ``None`` and the registry silently falls back to the
numpy backend.  When the extension is present, every function is a
direct C implementation of the ``pure`` contract (memcmp word compares,
memcpy patches), verified byte-identical by ``tests/kernels``.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.interface import KernelBackend

__all__ = ["BACKEND"]

BACKEND: Optional[KernelBackend]

try:
    from repro.kernels import _ckernels  # type: ignore[attr-defined]
except ImportError:  # extension not built -- registry falls back to numpy
    BACKEND = None
else:
    BACKEND = KernelBackend(
        name="compiled",
        make_diff=_ckernels.make_diff,
        make_diff_batch=_ckernels.make_diff_batch,
        apply_diff=_ckernels.apply_diff,
        apply_diff_batch=_ckernels.apply_diff_batch,
        twin_compare=_ckernels.twin_compare,
        fault_scan=_ckernels.fault_scan,
    )
