"""repro: reproduction of "Message Passing Versus Distributed Shared Memory
on Networks of Workstations" (Lu, Dwarkadas, Cox, Zwaenepoel -- SC 1995).

The front door is :mod:`repro.api`::

    from repro.api import RunConfig, run
    result = run(RunConfig(experiment="fig02", system="tmk", nprocs=8))
    print(result.speedup, result.messages)

``run()`` reads through a persistent on-disk result cache; ``repro sweep``
(:mod:`repro.bench.sweep`) fans the whole grid across CPU cores through
the same cache.  The layers underneath:

* ``repro.sim`` -- the simulated cluster substrate.
* ``repro.tmk`` -- the TreadMarks-style software DSM runtime.
* ``repro.pvm`` -- the PVM-style message-passing library.
* ``repro.apps`` -- the nine benchmark applications, each in sequential,
  TreadMarks, and PVM versions.
* ``repro.bench`` -- the experiment harness reproducing the paper's tables
  and figures, the sweep runner, and the result cache.
"""

from typing import Any

__version__ = "1.2.0"

#: The curated public surface.  Everything here is importable directly
#: from ``repro`` and resolved lazily (PEP 562), so ``import repro``
#: stays cheap and circular-import-free.
__all__ = [
    "RunConfig",
    "RunResult",
    "run",
    "run_sweep",
    "sweep_configs",
    "ResultCache",
    "EXPERIMENTS",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "__version__",
]

_LAZY = {
    "RunConfig": ("repro.api", "RunConfig"),
    "RunResult": ("repro.api", "RunResult"),
    "run": ("repro.api", "run"),
    "run_sweep": ("repro.bench.sweep", "run_sweep"),
    "sweep_configs": ("repro.bench.sweep", "sweep_configs"),
    "ResultCache": ("repro.bench.cache", "ResultCache"),
    "EXPERIMENTS": ("repro.bench.harness", "EXPERIMENTS"),
    "KernelBackend": ("repro.kernels", "KernelBackend"),
    "available_backends": ("repro.kernels", "available_backends"),
    "get_backend": ("repro.kernels", "get_backend"),
    "register_backend": ("repro.kernels", "register_backend"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
