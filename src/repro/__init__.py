"""repro: reproduction of "Message Passing Versus Distributed Shared Memory
on Networks of Workstations" (Lu, Dwarkadas, Cox, Zwaenepoel -- SC 1995).

Public API:

* ``repro.sim`` -- the simulated cluster substrate.
* ``repro.tmk`` -- the TreadMarks-style software DSM runtime.
* ``repro.pvm`` -- the PVM-style message-passing library.
* ``repro.apps`` -- the nine benchmark applications, each in sequential,
  TreadMarks, and PVM versions.
* ``repro.bench`` -- the experiment harness reproducing the paper's tables
  and figures.
"""

__version__ = "1.0.0"
