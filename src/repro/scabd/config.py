"""Configuration of the SC-ABD replication mode."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReplicationConfig"]


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs of the failure-masking quorum-replication mode.

    Frozen (hashable) so it can key the bench harness's run cache and
    round-trip through ``RunConfig.to_json``.
    """

    #: Number of dedicated page-replica servers added to the cluster.
    #: Quorums are majorities of this set, so ``replicas`` replicas mask
    #: up to ``(replicas - 1) // 2`` crashes (1 of 3, 2 of 5, ...).
    replicas: int = 3
    #: Fault-tolerance strategy this config selects.  Only ``"mask"``
    #: exists today (``--ft-mode rollback`` is expressed by *omitting*
    #: the replication config and using ``RecoveryConfig`` instead); the
    #: field is kept explicit so cached mask-mode results can never be
    #: confused with anything else.
    mode: str = "mask"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.mode != "mask":
            raise ValueError(f"unknown replication mode {self.mode!r} "
                             "(only 'mask' is supported)")

    @property
    def majority(self) -> int:
        """Quorum size: any two quorums of this size intersect."""
        return self.replicas // 2 + 1

    @property
    def f_max(self) -> int:
        """Replica crashes the quorum system masks before aborting."""
        return (self.replicas - 1) // 2
