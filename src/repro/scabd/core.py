"""The SC-ABD protocol core: home-serialized pages, quorum-replicated data.

One :class:`ScAbdCore` per *client* (application) processor.  The design
follows Ekström & Haridi's SC-ABD: sequential consistency comes from
serializing each page's operations, fault tolerance from keeping the page
*data* in ABD-style majority quorums over a dedicated replica set.

* Every page has a fixed **home** (page number modulo clients) that
  serializes requests IVY-style: single writer, read copyset,
  invalidation before a write grant.  The home holds the page's current
  version **tag** -- a per-page sequence number incremented by every
  writer flush -- but never the data.
* The page **data** lives only on the replica servers
  (:class:`ScAbdReplica`).  A writer losing its write permission flushes
  the full page to all live replicas under ``tag + 1`` and reports
  completion once a *majority* acknowledged (quorum write); a client
  whose copy is invalid reads from all live replicas and installs the
  highest tag among the first *majority* of replies (quorum read).

Because the home serializes writers, at most one flush per page is in
flight and ``(page, tag)`` determines the bytes uniquely; any read
majority intersects the last write majority, so the max-tag reply is
exactly the latest committed version and ABD's write-back phase is
unnecessary (see DESIGN.md section 5g).  The crash of a minority of
replicas is therefore *masked*: quorums still form, and the shared
failure detector (:class:`~repro.sim.recovery.RecoveryManager`) merely
marks the dead replica so future quorum traffic skips it.

Accounting: home/control traffic is charged to the DSM's own wire totals
(the run's ``tmk`` column), replica traffic to the ``"replication"``
pseudo-system, and the faulting thread's quorum-read wait to the
``replication`` profiler bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs.core import B_REPLICATION
from repro.sim.engine import YIELD
from repro.sim.network import Delivery, UdpChannel
from repro.tmk.pages import PageTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Processor
    from repro.scabd.api import ScAbdSystem

__all__ = ["ScAbdCore", "ScAbdReplica"]

INVALID, READ, WRITE = 0, 1, 2

# Control plane (home serialization; accounted with the DSM's traffic).
CAT_REQUEST = "scabd_request"        # faulting client -> home
CAT_GRANT = "scabd_grant"            # home -> faulting client
CAT_INVALIDATE = "scabd_invalidate"  # home -> copyset member
CAT_INV_ACK = "scabd_inv_ack"        # member -> home (after any flush)
CAT_DONE = "scabd_done"              # faulting client -> home

# Data plane (quorum traffic; accounted under the "replication" system).
CAT_QREAD = "quorum_read"            # client -> replica
CAT_QREAD_REPLY = "quorum_read_reply"  # replica -> client
CAT_QWRITE = "quorum_write"          # writer -> replica
CAT_QWRITE_ACK = "quorum_write_ack"  # replica -> writer

_REQ_BYTES = 32
_CTL_BYTES = 16

REPLICATION_SYSTEM = "replication"


@dataclass
class _HomeState:
    """Home-side bookkeeping for one page."""

    #: Clients holding a valid (READ or WRITE) copy.
    copyset: Set[int]
    #: The single writer, or None.  Invariant: writer is not None implies
    #: ``copyset == {writer}``.
    writer: Optional[int] = None
    #: Latest committed version on the replica quorum (0 = initial zeros,
    #: never flushed).
    tag: int = 0
    busy: bool = False
    queue: List[tuple] = field(default_factory=list)
    #: Outstanding invalidation/demotion acks for the current request.
    awaiting_acks: int = 0
    current: Optional[tuple] = None


@dataclass
class _FlushState:
    """Writer-side state for one in-flight quorum write (page flush)."""

    tag: int
    need: int
    home: int
    count: int = 0


class _Quorum:
    """Requester-side collector for one in-flight quorum read."""

    __slots__ = ("box", "need", "count", "tag", "data", "done")

    def __init__(self, box, need: int) -> None:
        self.box = box
        self.need = need
        self.count = 0
        self.tag = -1
        self.data: Optional[bytes] = None
        self.done = False


class ScAbdCore:
    """Per-client SC-ABD state machine (home manager + quorum client)."""

    def __init__(self, proc: "Processor", system: "ScAbdSystem") -> None:
        self.proc = proc
        self.system = system
        self.pid = proc.pid
        self.nclients = system.nclients
        self.cost = proc.cluster.cost
        self.pt = PageTable(system.config.segment_bytes, self.cost.page_size)
        #: Local access state per page (INVALID/READ/WRITE).
        self.state = np.full(self.pt.npages, READ, dtype=np.int8)
        #: Control traffic rides on the DSM's own wire totals; quorum
        #: traffic is kept apart under the "replication" pseudo-system.
        self.udp = UdpChannel(proc.cluster.net, system="tmk")
        self.udp_repl = UdpChannel(proc.cluster.net,
                                   system=REPLICATION_SYSTEM)
        #: Home-side state for the pages this client is home of.
        self.homes: Dict[int, _HomeState] = {}
        #: In-flight quorum writes from this client, by page.
        self._flush: Dict[int, _FlushState] = {}
        self.prefers_piecewise_writes = True

        # Diagnostics.
        self.read_faults = 0
        self.write_faults = 0
        self.invalidations = 0
        self.quorum_reads = 0
        self.quorum_writes = 0
        #: Optional protocol invariant monitor (repro.verify.invariants):
        #: receives install/invalidate/flush/grant/barrier events; never
        #: charges time or messages.
        self.monitor = None

        proc.register(CAT_REQUEST, self._on_request)
        proc.register(CAT_GRANT, self._on_grant)
        proc.register(CAT_INVALIDATE, self._on_invalidate)
        proc.register(CAT_INV_ACK, self._on_inv_ack)
        proc.register(CAT_DONE, self._on_done)
        proc.register(CAT_QREAD_REPLY, self._on_qread_reply)
        proc.register(CAT_QWRITE_ACK, self._on_qwrite_ack)

    # ------------------------------------------------------------------
    def home_of(self, page: int) -> int:
        return page % self.nclients

    def _home(self, page: int) -> _HomeState:
        state = self.homes.get(page)
        if state is None:
            # Initially everyone holds a zero-filled read copy; the
            # replica quorum holds tag 0 (implicit zeros).
            state = _HomeState(copyset=set(range(self.nclients)))
            self.homes[page] = state
        return state

    # ------------------------------------------------------------------
    # Application-facing access checks (same interface SharedArray uses)
    # ------------------------------------------------------------------
    def ensure_valid_range(self, start: int, nbytes: int) -> None:
        self.proc.drive(self.ensure_valid_range_g(start, nbytes))

    def ensure_writable_range(self, start: int, nbytes: int) -> None:
        self.proc.drive(self.ensure_writable_range_g(start, nbytes))

    def ensure_valid_runs(self, runs) -> None:
        self.proc.drive(self._ensure_g(runs, want_write=False))

    def ensure_writable_runs(self, runs) -> None:
        self.proc.drive(self._ensure_g(runs, want_write=True))

    def ensure_valid_range_g(self, start: int, nbytes: int):
        yield from self._ensure_g([(start, nbytes)], want_write=False)

    def ensure_writable_range_g(self, start: int, nbytes: int):
        yield from self._ensure_g([(start, nbytes)], want_write=True)

    def ensure_valid_runs_g(self, runs):
        yield from self._ensure_g(runs, want_write=False)

    def ensure_writable_runs_g(self, runs):
        yield from self._ensure_g(runs, want_write=True)

    def _ensure_g(self, runs, want_write: bool):
        """Acquire every page the access touches, atomically (see
        :meth:`repro.ivy.core.IvyCore._ensure` for the retry rationale)."""
        floor = WRITE if want_write else READ
        pages = sorted({page for start, nbytes in runs
                        for page in self.pt.pages_for_range(start, nbytes)})
        for _ in range(1000):
            clean = True
            for page in pages:
                if self.state[page] < floor:
                    yield from self._fault_g(page, want_write=want_write)
                    clean = False
            if clean:
                return
        raise RuntimeError(
            f"P{self.pid}: SC-ABD access over {len(pages)} pages livelocked "
            "under page contention (1000 acquisition rounds)")

    # ------------------------------------------------------------------
    # Faulting side
    # ------------------------------------------------------------------
    def _fault_g(self, page: int, want_write: bool):
        proc = self.proc
        yield YIELD
        if want_write:
            self.write_faults += 1
        else:
            self.read_faults += 1
        proc.compute(self.cost.fault_cpu)
        proc.trace("scabd_fault",
                   f"page={page} {'write' if want_write else 'read'}")
        box = proc.mailbox()
        home = self.home_of(page)
        box.waiting_on = f"P{home} (home)"
        request = ("write" if want_write else "read", page, self.pid, box)
        if home == self.pid:
            self._enqueue(request, at=proc.now)
        else:
            t = self.udp.send(self.pid, home, CAT_REQUEST, request,
                              _REQ_BYTES, t_ready=proc.now)
            proc.set_now(t)
        granted_write, _tag = yield from box.wait_g(f"scabd page {page}")
        if self.state[page] == INVALID:
            # No valid local copy: fetch the committed version from a
            # majority of the replica set.
            tag, data = yield from self._quorum_read_g(page)
            view = self.pt.page_view(page)
            if data is not None:
                view[:] = np.frombuffer(data, dtype=np.uint8)
            else:
                view[:] = 0  # tag 0: the page was never flushed
            proc.compute(self.cost.copy_cost(self.cost.page_size))
        self.state[page] = WRITE if granted_write else READ
        if self.monitor is not None:
            self.monitor.on_install(self.pid, page, granted_write, proc.now)
        if home == self.pid:
            self._finish(page)
        else:
            t = self.udp.send(self.pid, home, CAT_DONE, page,
                              _CTL_BYTES, t_ready=proc.now)
            proc.set_now(t)

    def _on_grant(self, delivery: Delivery) -> None:
        box, body = delivery.payload
        box.put(body, delivery.arrival + delivery.recv_cpu)

    def _quorum_read_g(self, page: int):
        """Read the page from a majority of live replicas (blocks)."""
        proc = self.proc
        live = self.system.live_replicas()
        need = self.system.replication.majority
        # Masking keeps dead <= f_max, so a majority is always alive.
        assert len(live) >= need, "quorum read with a dead majority"
        self.quorum_reads += 1
        collector = _Quorum(proc.mailbox(), need)
        collector.box.waiting_on = (
            f"majority of replicas {sorted(live)}")
        obs = proc.obs
        if obs is not None:
            obs.begin(proc.now, self.pid, "quorum_read", B_REPLICATION,
                      f"page={page} need={need}/{len(live)}")
        t = proc.now
        for replica in live:
            t = self.udp_repl.send(self.pid, replica, CAT_QREAD,
                                   (page, self.pid, collector),
                                   _REQ_BYTES, t_ready=t)
        proc.set_now(t)
        tag, data = yield from collector.box.wait_g(
            f"scabd quorum read page {page}")
        if obs is not None:
            obs.end(proc.now, self.pid)
        return tag, data

    def _on_qread_reply(self, delivery: Delivery) -> None:
        collector, tag, data = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        if collector.done:
            return  # a straggler beyond the quorum
        collector.count += 1
        if tag > collector.tag:
            collector.tag = tag
            collector.data = data
        if collector.count >= collector.need:
            collector.done = True
            collector.box.put((collector.tag, collector.data),
                              delivery.arrival + service)

    # ------------------------------------------------------------------
    # Writer side: quorum writes (page flushes)
    # ------------------------------------------------------------------
    def _start_flush(self, page: int, new_tag: int, demote: bool,
                     home: int, at: float) -> float:
        """Push this client's page image to the replica quorum.

        Runs in handler (or home-local) context, so it cannot block: the
        majority count is gathered by :meth:`_on_qwrite_ack`, which then
        reports completion to the home.  The local copy is demoted to
        READ (writer keeps reading its own data) or dropped to INVALID
        before any message leaves, so the image is consistent.
        """
        data = bytes(self.pt.page_view(page).tobytes())
        self.state[page] = READ if demote else INVALID
        if not demote:
            self.invalidations += 1
        if self.monitor is not None:
            self.monitor.on_flush_start(self.pid, page, new_tag, demote, at)
        live = self.system.live_replicas()
        need = self.system.replication.majority
        assert len(live) >= need, "quorum write with a dead majority"
        assert page not in self._flush, "overlapping flushes of one page"
        self._flush[page] = _FlushState(tag=new_tag, need=need, home=home)
        self.quorum_writes += 1
        t = at
        for replica in live:
            t = self.udp_repl.send(
                self.pid, replica, CAT_QWRITE,
                (page, new_tag, data, self.pid),
                self.cost.page_size + _REQ_BYTES, t_ready=t)
        return t

    def _on_qwrite_ack(self, delivery: Delivery) -> None:
        page, tag = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        flush = self._flush.get(page)
        if flush is None or flush.tag != tag:
            return  # a straggler beyond the quorum
        flush.count += 1
        if flush.count < flush.need:
            return
        del self._flush[page]
        at = delivery.arrival + service
        if self.monitor is not None:
            self.monitor.on_flush_complete(self.pid, page, tag, at)
        if flush.home == self.pid:
            self._home_ack(page, flush.tag, at)
        else:
            t = self.udp.send(self.pid, flush.home, CAT_INV_ACK,
                              (page, flush.tag), _CTL_BYTES, t_ready=at)
            self.proc.charge_service(max(0.0, t - at))

    def _on_invalidate(self, delivery: Delivery) -> None:
        page, demote, tag = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        home = self.home_of(page)
        t_ready = delivery.arrival + service
        if self.state[page] == WRITE:
            # This client is the page's writer: its image is newer than
            # the quorum's, so it must flush under tag+1 before the home
            # may proceed.  The ack is deferred to the flush quorum.
            t = self._start_flush(page, tag + 1, demote=demote,
                                  home=home, at=t_ready)
            self.proc.charge_service(service + (t - t_ready))
            return
        self.state[page] = INVALID
        self.invalidations += 1
        if self.monitor is not None:
            self.monitor.on_invalidate(self.pid, page, t_ready)
        t = self.udp.send(self.pid, home, CAT_INV_ACK, (page, tag),
                          _CTL_BYTES, t_ready=t_ready)
        self.proc.charge_service(service + (t - t_ready))

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------
    def _on_request(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._enqueue(delivery.payload, at=delivery.arrival + service)

    def _enqueue(self, request: tuple, at: float) -> None:
        page = request[1]
        state = self._home(page)
        state.queue.append(request)
        if not state.busy:
            self._start_next(page, at)

    def _start_next(self, page: int, at: float) -> None:
        state = self._home(page)
        if not state.queue:
            state.busy = False
            return
        state.busy = True
        state.current = state.queue.pop(0)
        kind, _, requester, _box = state.current
        if kind == "read":
            writer = state.writer
            if writer is not None and writer != requester:
                # Demote the writer first: it flushes its (newer) image
                # to the quorum and keeps a READ copy.
                state.awaiting_acks = 1
                if writer == self.pid:
                    self._start_flush(page, state.tag + 1, demote=True,
                                      home=self.pid, at=at)
                else:
                    self.udp.send(self.pid, writer, CAT_INVALIDATE,
                                  (page, True, state.tag), _CTL_BYTES,
                                  t_ready=at)
                return
            self._complete_grant(page, at)
            return
        # Write: every other copy must be invalidated first; the writer
        # (if any) additionally flushes before dropping its copy.
        targets = sorted(state.copyset - {requester})
        awaiting = 0
        t = at
        for member in targets:
            if member == self.pid:
                if self.state[page] == WRITE:
                    awaiting += 1
                    t = self._start_flush(page, state.tag + 1,
                                          demote=False, home=self.pid, at=t)
                else:
                    self.state[page] = INVALID
                    self.invalidations += 1
                    if self.monitor is not None:
                        self.monitor.on_invalidate(self.pid, page, t)
                continue
            awaiting += 1
            t = self.udp.send(self.pid, member, CAT_INVALIDATE,
                              (page, False, state.tag), _CTL_BYTES,
                              t_ready=t)
        state.awaiting_acks = awaiting
        if awaiting == 0:
            self._complete_grant(page, t)

    def _home_ack(self, page: int, new_tag: int, at: float) -> None:
        """One invalidation/demotion ack reached the home."""
        state = self._home(page)
        old_tag = state.tag
        state.tag = max(state.tag, new_tag)
        if self.monitor is not None:
            self.monitor.on_home_tag(self.pid, page, old_tag, state.tag, at)
        state.awaiting_acks -= 1
        if state.awaiting_acks == 0 and state.current is not None:
            self._complete_grant(page, at)

    def _on_inv_ack(self, delivery: Delivery) -> None:
        page, new_tag = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._home_ack(page, new_tag, delivery.arrival + service)

    def _complete_grant(self, page: int, at: float) -> None:
        state = self._home(page)
        assert state.current is not None
        kind, _, requester, box = state.current
        if kind == "write":
            state.copyset = {requester}
            state.writer = requester
        else:
            state.copyset.add(requester)
            state.writer = None
        if self.monitor is not None:
            self.monitor.on_home_grant(self.pid, page, kind, requester,
                                       state.writer,
                                       frozenset(state.copyset),
                                       state.tag, at)
        body = (kind == "write", state.tag)
        if requester == self.pid:
            box.put(body, at)
            return
        t = self.udp.send(self.pid, requester, CAT_GRANT, (box, body),
                          _CTL_BYTES, t_ready=at)
        self.proc.charge_service(max(0.0, t - at))

    def _on_done(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._finish(delivery.payload, at=delivery.arrival + service)

    def _finish(self, page: int, at: Optional[float] = None) -> None:
        state = self._home(page)
        state.current = None
        state.busy = False
        self._start_next(page, at if at is not None else self.proc.now)


class ScAbdReplica:
    """One page-replica server: a tagged page store behind two handlers.

    Lives on a dedicated service processor whose main body is an idle
    daemon loop; all work happens here, in message-handler context, so a
    replica keeps serving even while the simulation's application
    threads are blocked -- and stops mattering the moment the failure
    detector marks it dead.
    """

    def __init__(self, proc: "Processor", system: "ScAbdSystem") -> None:
        self.proc = proc
        self.system = system
        self.pid = proc.pid
        self.cost = proc.cluster.cost
        self.udp_repl = UdpChannel(proc.cluster.net,
                                   system=REPLICATION_SYSTEM)
        #: page -> (tag, bytes).  A missing page is (0, zeros), implicit.
        self.store: Dict[int, Tuple[int, bytes]] = {}
        #: Optional protocol invariant monitor (set by attach_invariants).
        self.monitor = None
        proc.register(CAT_QREAD, self._on_qread)
        proc.register(CAT_QWRITE, self._on_qwrite)

    def _on_qread(self, delivery: Delivery) -> None:
        page, requester, collector = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        tag, data = self.store.get(page, (0, None))
        nbytes = _CTL_BYTES + (self.cost.page_size if data is not None else 0)
        t_ready = delivery.arrival + service
        t = self.udp_repl.send(self.pid, requester, CAT_QREAD_REPLY,
                               (collector, tag, data), nbytes,
                               t_ready=t_ready)
        self.proc.charge_service(service + (t - t_ready))

    def _on_qwrite(self, delivery: Delivery) -> None:
        page, tag, data, writer = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        stored = self.store.get(page)
        if stored is None or tag > stored[0]:
            self.store[page] = (tag, data)
        if self.monitor is not None:
            prev_tag = 0 if stored is None else stored[0]
            self.monitor.on_replica_store(self.pid, page, prev_tag, tag,
                                          self.store[page][0],
                                          delivery.arrival)
        t_ready = delivery.arrival + service
        t = self.udp_repl.send(self.pid, writer, CAT_QWRITE_ACK,
                               (page, tag), _CTL_BYTES, t_ready=t_ready)
        self.proc.charge_service(service + (t - t_ready))
