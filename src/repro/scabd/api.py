"""The SC-ABD runtime facade.

Mirrors :mod:`repro.ivy.api`: ``attach_scabd`` gives every *application*
processor a ``proc.tmk`` endpoint exposing exactly the interface the
TreadMarks applications use (``barrier``, ``lock_acquire``/
``lock_release``, ``shared_array``), so every ``tmk_main`` in
:mod:`repro.apps` runs unmodified under quorum replication.  The last
``replicas`` processors of the cluster become dedicated page-replica
servers: they never run the application function (their main body is an
idle daemon loop; all replica work happens in message handlers) and are
excluded from the elapsed-time measurement -- the cost of replication
shows up where it is *paid*, in the clients' quorum waits and in the
``"replication"`` wire traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.core import B_STALL_SYNC
from repro.sim.engine import Block
from repro.scabd.config import ReplicationConfig
from repro.scabd.core import ScAbdCore, ScAbdReplica
from repro.ivy.sync import IvyBarrier, IvyLocks
from repro.tmk.sharedmem import SharedArray, SharedHeap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster, Processor

__all__ = ["ReplicationReport", "ScAbd", "ScAbdConfig", "ScAbdSystem",
           "attach_scabd"]


@dataclass(frozen=True)
class ScAbdConfig:
    """Cluster-wide SC-ABD configuration (heap layout)."""

    segment_bytes: int = 1 << 23


@dataclass
class ReplicationReport:
    """What the quorum-replication layer did during one run."""

    replicas: int
    f_max: int
    #: Replica crashes absorbed without rollback, in masking order.
    masked_nodes: List[int] = field(default_factory=list)
    #: Sum over masked crashes of (detect time - crash time): how long
    #: each dead replica kept receiving (futile) quorum traffic.
    detection_latency: float = 0.0
    quorum_reads: int = 0
    quorum_writes: int = 0
    #: Quorum wire traffic (the ``"replication"`` stats system).
    messages: int = 0
    bytes: int = 0

    @property
    def masked_failures(self) -> int:
        return len(self.masked_nodes)


class ScAbdSystem:
    """Cluster-global SC-ABD state: heap layout, replica set, liveness."""

    def __init__(self, cluster: "Cluster", config: ScAbdConfig,
                 replication: ReplicationConfig) -> None:
        if config.segment_bytes % cluster.cost.page_size:
            raise ValueError("segment size must be a multiple of the page size")
        nclients = cluster.nprocs - replication.replicas
        if nclients < 1:
            raise ValueError(
                f"cluster of {cluster.nprocs} cannot host "
                f"{replication.replicas} replica servers and still have "
                "an application processor")
        self.cluster = cluster
        self.config = config
        self.replication = replication
        self.nclients = nclients
        #: Pids of the dedicated page-replica servers.
        self.replica_pids: Tuple[int, ...] = tuple(
            range(nclients, nclients + replication.replicas))
        #: Replica pids the failure detector declared dead (masked).
        self.dead: set[int] = set()
        #: (node, t_crash, t_detect) per masked crash, in masking order.
        self.masked: List[Tuple[int, float, float]] = []
        self.heap = SharedHeap(config.segment_bytes, cluster.cost.page_size)
        self.replicas: List[ScAbdReplica] = []
        self.endpoints: List["ScAbd"] = []

    def live_replicas(self) -> List[int]:
        """Replica pids quorum traffic still goes to (sorted)."""
        return [pid for pid in self.replica_pids if pid not in self.dead]

    # ------------------------------------------------------------------
    def on_node_failure(self, node: int, t_crash: float,
                        t_detect: float) -> bool:
        """Failure-detector listener: mask a minority replica crash.

        Returns True (masked) only for a *replica* crash that leaves at
        most ``f_max`` replicas dead: quorums are majorities, so with
        ``replicas - f_max >= majority`` survivors every quorum still
        forms and the run proceeds untouched.  An application-rank crash,
        or one dead replica too many, returns False and the shared
        detector declares :class:`~repro.sim.recovery.NodeFailure` as
        usual (clean abort -- this mode has no rollback to fall back on).
        """
        if node not in self.replica_pids:
            return False
        if len(self.dead) + 1 > self.replication.f_max:
            return False
        self.dead.add(node)
        self.masked.append((node, t_crash, t_detect))
        # Reliable-delivery timers aimed at (or owned by) the dead node
        # would retransmit into silence until their retry cap turned the
        # masked crash into a spurious TransportError.
        self.cluster.net.cancel_pending_to(node)
        self.cluster.stats.record("replication", "masked_failure",
                                  messages=1, nbytes=0)
        return True

    # ------------------------------------------------------------------
    def report(self) -> ReplicationReport:
        """Summarize the layer's activity (call after the run)."""
        out = ReplicationReport(replicas=self.replication.replicas,
                                f_max=self.replication.f_max)
        for node, t_crash, t_detect in self.masked:
            out.masked_nodes.append(node)
            out.detection_latency += t_detect - t_crash
        for endpoint in self.endpoints:
            out.quorum_reads += endpoint.core.quorum_reads
            out.quorum_writes += endpoint.core.quorum_writes
        total = self.cluster.stats.total("replication")
        out.messages = total.messages
        out.bytes = total.bytes
        return out


class ScAbd:
    """Per-client SC-ABD endpoint; interface-compatible with ``Tmk``."""

    def __init__(self, proc: "Processor", system: ScAbdSystem) -> None:
        self.proc = proc
        self.system = system
        self.core = ScAbdCore(proc, system)
        # Sync managers span only the client ranks: a lock manager or
        # barrier master on a replica server could crash and be masked,
        # which would strand the synchronization state with it.
        self.locks = IvyLocks(proc, self.core, nprocs=system.nclients)
        self.barriers = IvyBarrier(proc, self.core, nprocs=system.nclients)
        self._arrays: Dict[str, SharedArray] = {}

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def nprocs(self) -> int:
        """The *application* processor count: replica servers are
        invisible to the programming model, so work partitioning and
        barrier membership never include them."""
        return self.system.nclients

    # ------------------------------------------------------------------
    def barrier(self, bid: int) -> None:
        return self.proc.drive(self.barrier_g(bid))

    def barrier_g(self, bid: int):
        """Generator form of :meth:`barrier` (coro-backend convention)."""
        proc = self.proc
        obs = proc.obs
        if obs is not None:
            obs.begin(proc.now, proc.pid, "barrier", B_STALL_SYNC,
                      f"bid={bid}")
        yield from self.barriers.barrier_g(bid)
        if obs is not None:
            obs.end(proc.now, proc.pid)

    def lock_acquire(self, lock: int) -> None:
        return self.proc.drive(self.lock_acquire_g(lock))

    def lock_acquire_g(self, lock: int):
        """Generator form of :meth:`lock_acquire`."""
        proc = self.proc
        obs = proc.obs
        if obs is not None:
            obs.begin(proc.now, proc.pid, "lock_acquire", B_STALL_SYNC,
                      f"lock={lock}")
        yield from self.locks.acquire_g(lock)
        if obs is not None:
            obs.end(proc.now, proc.pid)

    def lock_release(self, lock: int) -> None:
        self.locks.release(lock)

    def lock_release_g(self, lock: int):
        """Generator form of :meth:`lock_release`."""
        yield from self.locks.release_g(lock)

    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, align: int | None = None) -> int:
        return self.system.heap.malloc(nbytes, align)

    def array_at(self, addr: int, shape: Tuple[int, ...], dtype) -> SharedArray:
        return SharedArray(self, addr, shape, np.dtype(dtype))

    def shared_array(self, name: str, shape: Tuple[int, ...], dtype,
                     align: int | None = None) -> SharedArray:
        arr = self._arrays.get(name)
        if arr is None:
            addr = self.system.heap.named(name, tuple(shape),
                                          np.dtype(dtype), align)
            arr = SharedArray(self, addr, tuple(shape), np.dtype(dtype))
            self._arrays[name] = arr
        return arr

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return self.core.read_faults + self.core.write_faults

    @property
    def lock_wait_time(self) -> float:
        return self.locks.wait_time

    @property
    def barrier_wait_time(self) -> float:
        return self.barriers.wait_time


def _replica_main(proc: "Processor"):
    """Main body of a page-replica server: park forever.

    All replica work happens in message handlers; this generator body only
    exists so the processor has a clock to charge service time to.  The
    engine retires it once every application thread has finished (it works
    identically on both backends: the bootstrap drives the generator).
    """
    while True:
        yield Block("scabd replica idle", None)


def attach_scabd(cluster: "Cluster", config: Optional[ScAbdConfig] = None,
                 replication: Optional[ReplicationConfig] = None
                 ) -> List[ScAbd]:
    """Attach the SC-ABD runtime: clients + replica servers + detector.

    The cluster must be sized ``nclients + replication.replicas``; the
    last ``replicas`` processors become page-replica servers.  Returns
    the client endpoints (also set as ``proc.tmk``, the attribute the
    applications use).
    """
    system = ScAbdSystem(cluster,
                         config if config is not None else ScAbdConfig(),
                         replication if replication is not None
                         else ReplicationConfig())
    endpoints = []
    for pid in range(system.nclients):
        proc = cluster.procs[pid]
        proc.tmk = ScAbd(proc, system)
        endpoints.append(proc.tmk)
    system.endpoints = endpoints
    for pid in system.replica_pids:
        proc = cluster.procs[pid]
        proc.main_override = _replica_main
        system.replicas.append(ScAbdReplica(proc, system))
        cluster.service_pids.add(pid)
    if cluster.recovery is not None:
        cluster.recovery.add_failure_listener(system.on_node_failure)
    return endpoints
