"""SC-ABD: a failure-masking, quorum-replicated DSM mode.

Instead of paying for a crash after the fact (checkpoint/rollback,
:mod:`repro.sim.recovery`), this package *masks* it: every shared page is
replicated on a set of dedicated page-replica servers and all page data
moves through ABD-style majority quorums, so the crash of a minority of
replicas leaves the run unaffected -- same result bytes, no rollback,
only the replication traffic and quorum-wait time added to the measured
cost.  See DESIGN.md section 5g for the protocol and accounting rules.
"""

from repro.scabd.api import (ReplicationReport, ScAbd, ScAbdConfig,
                             ScAbdSystem, attach_scabd)
from repro.scabd.config import ReplicationConfig

__all__ = ["ReplicationConfig", "ReplicationReport", "ScAbd", "ScAbdConfig",
           "ScAbdSystem", "attach_scabd"]
