"""Experiment harness reproducing the paper's tables and figures.

* :mod:`repro.bench.harness` -- the registry of the paper's 12 experiment
  configurations, cached runners, and speedup series.
* :mod:`repro.bench.tables` -- Table 1 (sequential times) and Table 2
  (messages and data at 8 processors) renderers.
* :mod:`repro.bench.figures` -- ASCII speedup curves in the style of the
  paper's Figures 1-12.
* :mod:`repro.bench.paper` -- the paper's qualitative expectations (who
  wins, by roughly what factor) and checks against measured results.
"""

from repro.bench.harness import (EXPERIMENTS, Experiment, clear_cache,
                                 messages_at, run_cached, seq_time,
                                 speedup_series)
from repro.bench.figures import render_figure
from repro.bench.paper import EXPECTATIONS, Expectation, check_experiment
from repro.bench.tables import render_table1, render_table2

__all__ = [
    "EXPECTATIONS",
    "EXPERIMENTS",
    "Expectation",
    "Experiment",
    "check_experiment",
    "clear_cache",
    "messages_at",
    "render_figure",
    "render_table1",
    "render_table2",
    "run_cached",
    "seq_time",
    "speedup_series",
]
