"""Experiment harness reproducing the paper's tables and figures.

* :mod:`repro.bench.harness` -- the registry of the paper's 12 experiment
  configurations, cached runners, and speedup series.
* :mod:`repro.bench.tables` -- Table 1 (sequential times) and Table 2
  (messages and data at 8 processors) renderers.
* :mod:`repro.bench.figures` -- ASCII speedup curves in the style of the
  paper's Figures 1-12.
* :mod:`repro.bench.paper` -- the paper's qualitative expectations (who
  wins, by roughly what factor) and checks against measured results.
* :mod:`repro.bench.sweep` -- the parallel sweep runner (``repro sweep``).
* :mod:`repro.bench.cache` -- the persistent content-addressed result
  cache that :func:`repro.api.run` and the sweep read through.
"""

from repro.bench.cache import ResultCache, default_cache
from repro.bench.harness import (EXPERIMENTS, Experiment, clear_cache,
                                 messages_at, run_cached, seq_time,
                                 speedup_series)
from repro.bench.figures import render_figure
from repro.bench.paper import EXPECTATIONS, Expectation, check_experiment
from repro.bench.sweep import SweepReport, SweepRun, run_sweep, sweep_configs
from repro.bench.tables import render_table1, render_table2

__all__ = [
    "EXPECTATIONS",
    "EXPERIMENTS",
    "Expectation",
    "Experiment",
    "ResultCache",
    "SweepReport",
    "SweepRun",
    "check_experiment",
    "clear_cache",
    "default_cache",
    "messages_at",
    "render_figure",
    "render_table1",
    "render_table2",
    "run_cached",
    "run_sweep",
    "seq_time",
    "speedup_series",
    "sweep_configs",
]
