"""The paper's qualitative findings, as machine-checkable expectations.

The digits in the available copy of the paper are corrupted, so absolute
speedups cannot be transcribed; the prose, however, states the relations
that matter (see EXPERIMENTS.md):

* EP, SOR-Zero, SOR-NonZero, Water-1728 and ILINK: TreadMarks within ~10%
  of PVM;
* IS-Small, Water-288, Barnes-Hut, 3-D FFT, TSP, QSORT: differences on
  the order of 10% to 30%;
* IS-Large: PVM performs about two times better;
* TreadMarks always sends more messages; it sends *less data* than PVM for
  SOR-Zero (empty diffs of unchanged pages), about the *same* data for the
  3-D FFT (release consistency ships exactly the written words), roughly
  ``n*(n-1)/(2*(n-1))`` times the data for IS (diff accumulation), and
  more data everywhere else (false sharing, write notices).

Every expectation here is evaluated against measured 8-processor runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bench import harness

__all__ = ["EXPECTATIONS", "Expectation", "CheckResult", "check_experiment"]


@dataclass(frozen=True)
class Expectation:
    """Qualitative targets for one experiment at 8 processors."""

    exp_id: str
    #: Acceptable TMK/PVM speedup ratio range.
    ratio_lo: float
    ratio_hi: float
    #: Acceptable TMK/PVM message-count ratio range (TMK always sends more).
    msg_ratio_lo: float = 1.0
    msg_ratio_hi: float = float("inf")
    #: Acceptable TMK/PVM data-volume ratio range (None = unconstrained).
    data_ratio_lo: Optional[float] = None
    data_ratio_hi: Optional[float] = None
    #: Upper bound on the better system's speedup ("poor on both"), if any.
    max_speedup: Optional[float] = None
    #: Lower bound on both speedups ("near-linear"), if any.
    min_speedup: Optional[float] = None
    note: str = ""


EXPECTATIONS = {
    "fig01": Expectation("fig01", 0.90, 1.05, min_speedup=7.0,
                         note="negligible communication; both near-linear"),
    "fig02": Expectation("fig02", 0.80, 1.02, msg_ratio_lo=3.0,
                         data_ratio_lo=0.0, data_ratio_hi=1.0,
                         note="TreadMarks ships LESS data (empty diffs of "
                              "still-zero pages); load imbalance caps both"),
    "fig03": Expectation("fig03", 0.72, 1.02, msg_ratio_lo=3.0,
                         note="balanced load; TreadMarks close to PVM"),
    "fig04": Expectation("fig04", 0.60, 0.95, msg_ratio_lo=4.0,
                         data_ratio_lo=2.0,
                         note="separate synchronization + diff requests"),
    "fig05": Expectation("fig05", 0.10, 0.60, msg_ratio_lo=20.0,
                         data_ratio_lo=3.0, data_ratio_hi=5.5,
                         max_speedup=5.0,
                         note="diff accumulation: ~n(n-1)b vs 2(n-1)b per "
                              "iteration; PVM about twice as fast"),
    "fig06": Expectation("fig06", 0.65, 0.95, msg_ratio_lo=3.0,
                         note="migratory pool/queue/stack + lock contention"),
    "fig07": Expectation("fig07", 0.60, 0.92, msg_ratio_lo=8.0,
                         note="diff requests for page-spanning subarrays"),
    "fig08": Expectation("fig08", 0.65, 0.92, data_ratio_lo=2.0,
                         note="false sharing on molecule pages at 288"),
    "fig09": Expectation("fig09", 0.88, 1.02,
                         note="higher compute/communication ratio at 1728"),
    "fig10": Expectation("fig10", 0.55, 0.92, msg_ratio_lo=2.0,
                         max_speedup=6.5,
                         note="PVM broadcast saturation; TMK false sharing; "
                              "both poor"),
    "fig11": Expectation("fig11", 0.60, 0.95, msg_ratio_lo=8.0,
                         data_ratio_lo=0.7, data_ratio_hi=1.6,
                         note="same data as PVM, many more messages"),
    "fig12": Expectation("fig12", 0.78, 1.02,
                         note="high compute/communication ratio; close"),
}


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        flag = "PASS" if self.passed else "FAIL"
        return f"[{flag}] {self.name}: {self.detail}"


def check_experiment(exp_id: str, preset: str = "bench",
                     nprocs: int = 8) -> List[CheckResult]:
    """Evaluate the paper's expectations against measured runs."""
    exp = EXPECTATIONS[exp_id]
    seq = harness.seq_time(exp_id, preset)
    tmk = harness.run_cached(exp_id, "tmk", nprocs, preset)
    pvm = harness.run_cached(exp_id, "pvm", nprocs, preset)
    sp_tmk = seq / tmk.time
    sp_pvm = seq / pvm.time
    ratio = sp_tmk / sp_pvm
    out: List[CheckResult] = []

    out.append(CheckResult(
        "speedup ratio", exp.ratio_lo <= ratio <= exp.ratio_hi,
        f"TMK/PVM = {sp_tmk:.2f}/{sp_pvm:.2f} = {ratio:.2f} "
        f"(expected {exp.ratio_lo:.2f}..{exp.ratio_hi:.2f})"))

    msg_ratio = tmk.total_messages() / max(pvm.total_messages(), 1)
    out.append(CheckResult(
        "message ratio",
        exp.msg_ratio_lo <= msg_ratio <= exp.msg_ratio_hi,
        f"TMK/PVM messages = {tmk.total_messages()}/{pvm.total_messages()} "
        f"= {msg_ratio:.1f}x (expected >= {exp.msg_ratio_lo:.1f}x)"))

    if exp.data_ratio_lo is not None or exp.data_ratio_hi is not None:
        lo = exp.data_ratio_lo if exp.data_ratio_lo is not None else 0.0
        hi = exp.data_ratio_hi if exp.data_ratio_hi is not None else float("inf")
        data_ratio = tmk.total_kbytes() / max(pvm.total_kbytes(), 1e-9)
        out.append(CheckResult(
            "data ratio", lo <= data_ratio <= hi,
            f"TMK/PVM data = {tmk.total_kbytes():.0f}/{pvm.total_kbytes():.0f} KB "
            f"= {data_ratio:.2f}x (expected {lo:.2f}..{hi:.2f})"))

    if exp.max_speedup is not None:
        out.append(CheckResult(
            "poor absolute speedup", max(sp_tmk, sp_pvm) <= exp.max_speedup,
            f"best speedup {max(sp_tmk, sp_pvm):.2f} "
            f"(expected <= {exp.max_speedup:.1f})"))
    if exp.min_speedup is not None:
        out.append(CheckResult(
            "near-linear speedup", min(sp_tmk, sp_pvm) >= exp.min_speedup,
            f"worst speedup {min(sp_tmk, sp_pvm):.2f} "
            f"(expected >= {exp.min_speedup:.1f})"))
    return out
