"""Execution-time decomposition for TreadMarks runs.

The paper's prose quantifies *where* TreadMarks' time goes -- e.g. for
TSP, "at 8 processors each process spends [a share] of [its] seconds
waiting at lock acquires".  The simulator tracks the same quantities per
processor (lock wait, barrier wait, fault wait / data fetch, and the
residual useful computation plus protocol CPU); this module turns them
into a report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.base import ParallelResult

__all__ = ["ProcessorBreakdown", "RunBreakdown", "decompose",
           "render_breakdown"]


@dataclass(frozen=True)
class ProcessorBreakdown:
    """Where one simulated processor's virtual time went."""

    pid: int
    total: float
    #: Blocked in Tmk_lock_acquire (the paper's TSP observation).
    lock_wait: float
    #: Blocked at barriers (arrival-to-departure).
    barrier_wait: float
    #: Inside page faults: request/response round trips + diff applies.
    fault_wait: float
    faults: int
    piggyback_hits: int

    @property
    def other(self) -> float:
        """Computation plus local protocol CPU (twins, diffs, service)."""
        return max(0.0, self.total - self.lock_wait - self.barrier_wait
                   - self.fault_wait)

    def shares(self) -> dict:
        if self.total <= 0:
            return {"lock": 0.0, "barrier": 0.0, "fault": 0.0, "other": 0.0}
        return {
            "lock": self.lock_wait / self.total,
            "barrier": self.barrier_wait / self.total,
            "fault": self.fault_wait / self.total,
            "other": self.other / self.total,
        }


@dataclass(frozen=True)
class RunBreakdown:
    """Per-processor decomposition of one TreadMarks run."""

    processors: List[ProcessorBreakdown]

    @property
    def total(self) -> float:
        return max(p.total for p in self.processors)

    def mean_share(self, field: str) -> float:
        """Average fraction of processor time spent in ``field``
        (``lock``, ``barrier``, ``fault``, or ``other``)."""
        shares = [p.shares()[field] for p in self.processors]
        return sum(shares) / len(shares) if shares else 0.0


def decompose(result: ParallelResult) -> RunBreakdown:
    """Extract the per-processor wait breakdown from a finished TMK run."""
    if result.system != "tmk":
        raise ValueError("decompose() applies to TreadMarks runs")
    if not result.endpoints:
        raise ValueError("run carries no runtime endpoints")
    out = []
    for pid, tmk in enumerate(result.endpoints):
        out.append(ProcessorBreakdown(
            pid=pid,
            total=result.cluster.finish_times[pid],
            lock_wait=tmk.locks.wait_time,
            barrier_wait=tmk.barriers.wait_time,
            fault_wait=tmk.core.fault_wait_time,
            faults=tmk.core.fault_count,
            piggyback_hits=tmk.core.piggyback_hits,
        ))
    return RunBreakdown(processors=out)


def render_breakdown(label: str, breakdown: RunBreakdown) -> str:
    """Human-readable per-processor table plus the mean shares."""
    rows = [f"Time decomposition: {label}",
            "",
            f"{'proc':>4}{'total(s)':>10}{'lock':>9}{'barrier':>9}"
            f"{'fault':>9}{'other':>9}{'faults':>8}",
            "-" * 58]
    for p in breakdown.processors:
        rows.append(f"{p.pid:>4}{p.total:>10.2f}{p.lock_wait:>9.2f}"
                    f"{p.barrier_wait:>9.2f}{p.fault_wait:>9.2f}"
                    f"{p.other:>9.2f}{p.faults:>8d}")
    rows.append("")
    rows.append("mean shares: " + "  ".join(
        f"{name} {breakdown.mean_share(name) * 100:.0f}%"
        for name in ("lock", "barrier", "fault", "other")))
    return "\n".join(rows)
