"""Experiment registry and cached runners.

The paper evaluates nine applications, three of them with two input sets,
giving twelve configurations (Figures 1-12 plus Tables 1 and 2).  Each
:class:`Experiment` carries both a ``bench`` parameter preset (scaled to
run the whole grid in minutes of host time) and the ``paper`` preset (the
published problem size).

Runs are memoized per process so Table 2 and the figures share the
8-processor runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.races import AnalysisConfig
from repro.apps import base
from repro.scabd.config import ReplicationConfig
from repro.sim.costmodel import CostModel
from repro.sim.faults import FaultPlan
from repro.sim.recovery import RecoveryConfig
from repro.apps.barnes_hut import BhParams
from repro.apps.ep import EpParams
from repro.apps.fft3d import FftParams
from repro.apps.ilink import IlinkParams
from repro.apps.is_sort import IsParams
from repro.apps.qsort import QsortParams
from repro.apps.sor import SorParams
from repro.apps.tsp import TspParams
from repro.apps.water import WaterParams

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "clear_cache",
    "messages_at",
    "run_cached",
    "seq_time",
    "speedup_series",
]

#: The processor counts the paper's figures sweep.
NPROCS_SERIES = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class Experiment:
    """One of the paper's twelve evaluation configurations."""

    exp_id: str
    label: str
    app: str
    figure: int
    bench_params: Any
    paper_params: Any
    #: Short description of the problem size, for Table 1's size column.
    size_note: str
    #: Seconds-scale parameterization for smoke/golden-trace tests.
    tiny_params: Any = None


EXPERIMENTS: Dict[str, Experiment] = {}


def _add(exp: Experiment) -> None:
    EXPERIMENTS[exp.exp_id] = exp


_add(Experiment("fig01", "EP", "ep", 1,
                EpParams.bench(), EpParams.paper(),
                "2^{log2_pairs} Gaussian pairs",
                tiny_params=EpParams.tiny()))
_add(Experiment("fig02", "SOR-Zero", "sor", 2,
                SorParams.bench(), SorParams.paper(),
                "{rows} x 2x{width} doubles, zero interior",
                tiny_params=SorParams.tiny()))
_add(Experiment("fig03", "SOR-NonZero", "sor", 3,
                SorParams.bench(nonzero=True), SorParams.paper(nonzero=True),
                "{rows} x 2x{width} doubles, nonzero",
                tiny_params=SorParams.tiny(nonzero=True)))
_add(Experiment("fig04", "IS-Small", "is", 4,
                IsParams.bench_small(), IsParams.paper_small(),
                "N=2^{log2_keys}, Bmax=2^{log2_bmax}",
                tiny_params=IsParams.tiny()))
_add(Experiment("fig05", "IS-Large", "is", 5,
                IsParams.bench_large(), IsParams.paper_large(),
                "N=2^{log2_keys}, Bmax=2^{log2_bmax}",
                tiny_params=IsParams.tiny(large=True)))
_add(Experiment("fig06", "TSP", "tsp", 6,
                TspParams.bench(), TspParams.paper(),
                "{ncities} cities, threshold {threshold}",
                tiny_params=TspParams.tiny()))
_add(Experiment("fig07", "QSORT", "qsort", 7,
                QsortParams.bench(), QsortParams.paper(),
                "{nkeys} integers, bubble threshold {threshold}",
                tiny_params=QsortParams.tiny()))
_add(Experiment("fig08", "Water-288", "water", 8,
                WaterParams.bench_288(), WaterParams.paper_288(),
                "{nmol} molecules, {steps} steps",
                tiny_params=WaterParams.tiny()))
_add(Experiment("fig09", "Water-1728", "water", 9,
                WaterParams.bench_1728(), WaterParams.paper_1728(),
                "{nmol} molecules, {steps} steps",
                tiny_params=WaterParams(nmol=125, steps=2)))
_add(Experiment("fig10", "Barnes-Hut", "barnes_hut", 10,
                BhParams.bench(), BhParams.paper(),
                "{nbodies} bodies, {steps} steps",
                tiny_params=BhParams.tiny()))
_add(Experiment("fig11", "3D-FFT", "fft3d", 11,
                FftParams.bench(), FftParams.paper(),
                "{n1}x{n2}x{n3} complex, {iterations} iterations",
                tiny_params=FftParams.tiny()))
_add(Experiment("fig12", "ILINK", "ilink", 12,
                IlinkParams.bench(), IlinkParams.paper(),
                "synthetic CLP-like pedigree, {families} families",
                tiny_params=IlinkParams.tiny()))


def params_for(exp: Experiment, preset: str = "bench") -> Any:
    if preset == "bench":
        return exp.bench_params
    if preset == "paper":
        return exp.paper_params
    if preset == "tiny":
        if exp.tiny_params is None:
            raise ValueError(f"{exp.exp_id} has no tiny parameterization")
        return exp.tiny_params
    raise ValueError(f"unknown preset {preset!r}")


def size_string(exp: Experiment, preset: str = "bench") -> str:
    params = params_for(exp, preset)
    try:
        return exp.size_note.format(**vars(params))
    except (KeyError, IndexError):
        return exp.size_note


# ----------------------------------------------------------------------
# Cached runners
# ----------------------------------------------------------------------
_SEQ_CACHE: Dict[Tuple[str, str], base.SeqResult] = {}
_PAR_CACHE: Dict[Tuple[str, str, str, int], base.ParallelResult] = {}


def clear_cache() -> None:
    _SEQ_CACHE.clear()
    _PAR_CACHE.clear()


def seq_time(exp_id: str, preset: str = "bench") -> float:
    """Sequential virtual time (the Table 1 number)."""
    return _seq(exp_id, preset).time


def _seq(exp_id: str, preset: str) -> base.SeqResult:
    key = (exp_id, preset)
    if key not in _SEQ_CACHE:
        exp = EXPERIMENTS[exp_id]
        _SEQ_CACHE[key] = base.run_sequential(exp.app, params_for(exp, preset))
    return _SEQ_CACHE[key]


def run_cached(exp_id: str, system: str, nprocs: int,
               preset: str = "bench",
               faults: Optional[FaultPlan] = None,
               analysis: Optional[AnalysisConfig] = None,
               recovery: Optional[RecoveryConfig] = None,
               obs: Optional[ObsConfig] = None,
               cost: Optional[CostModel] = None,
               replication: Optional[ReplicationConfig] = None,
               invariants: bool = False,
               engine: str = "threads",
               kernels: str = "numpy") -> base.ParallelResult:
    """One parallel run, memoized in-process, with its result verified
    against the sequential version (every bench run is also a correctness
    check -- including lossy and crash/recovery runs, whose results must
    match the fault-free ones).

    This is the *live* runner: it returns the full ParallelResult with
    stats buckets, endpoints, sanitizer, and profiler attached.  Most
    callers want :func:`repro.api.run` instead, which reads through the
    persistent on-disk cache and returns the versioned summary record.
    """
    if analysis is not None and not analysis.enabled:
        analysis = None
    if obs is not None and not obs.enabled:
        obs = None
    key = (exp_id, preset, system, nprocs, faults, analysis, recovery, obs,
           cost, replication, invariants, engine, kernels)
    if key not in _PAR_CACHE:
        exp = EXPERIMENTS[exp_id]
        result = base.run_parallel(exp.app, system, nprocs,
                                   params_for(exp, preset), cost=cost,
                                   faults=faults,
                                   analysis=analysis, recovery=recovery,
                                   obs=obs, replication=replication,
                                   invariants=invariants, engine=engine,
                                   kernels=kernels)
        seq = _seq(exp_id, preset)
        spec = base.get_app(exp.app)
        if not spec.verify(result.result, seq.result):
            raise AssertionError(
                f"{exp_id} ({system}, {nprocs} procs): parallel result "
                "does not match the sequential run")
        _PAR_CACHE[key] = result
    return _PAR_CACHE[key]


def speedup_series(exp_id: str, system: str,
                   nprocs_list: Sequence[int] = NPROCS_SERIES,
                   preset: str = "bench") -> List[float]:
    """Speedups over the sequential run (one of the paper's curves).

    Reads through the persistent result cache via :mod:`repro.api`, so
    re-rendering a figure after a warm sweep simulates nothing.
    """
    from repro import api
    return api.speedup_series(exp_id, system, nprocs_list, preset)


def messages_at(exp_id: str, system: str, nprocs: int = 8,
                preset: str = "bench") -> Tuple[int, float]:
    """(messages, kilobytes) for one system at ``nprocs`` (Table 2).

    Reads through the persistent result cache via :mod:`repro.api`.
    """
    from repro import api
    return api.messages_at(exp_id, system, nprocs, preset)
