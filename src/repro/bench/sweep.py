"""Parallel sweep runner: fan the paper's run grid across CPU cores.

The full evaluation is 24 independent runs (12 experiments x tmk/pvm) per
processor count, and each run is a deterministic single-threaded
simulation -- an embarrassingly parallel workload.  :func:`run_sweep`
fans a list of :class:`repro.api.RunConfig` across worker *processes*
(``concurrent.futures.ProcessPoolExecutor`` with the ``spawn`` start
method, so workers never inherit interpreter state from the parent).

Workers exchange only JSON: each receives one serialized config, executes
it through :func:`repro.api.run` (which consults and populates the shared
on-disk result cache -- writes are atomic, so concurrent workers are
safe), and returns the serialized :class:`~repro.api.RunResult`.  Because
the simulator is bit-for-bit deterministic and results are canonically
encoded, a parallel sweep is byte-identical to a serial one -- a property
``tests/bench/test_sweep.py`` asserts over the whole grid.

``repro sweep`` is the CLI entry point; :func:`sweep_configs` builds the
standard grids it offers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.cache import ResultCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import RunConfig, RunResult

# NOTE: repro.api is imported inside functions throughout this module.
# ``repro.bench.__init__`` imports sweep, and repro.api imports
# ``repro.bench.cache`` (which initializes the repro.bench package), so a
# module-level import either way would be circular.

__all__ = ["SweepReport", "SweepRun", "default_jobs", "run_sweep",
           "sweep_configs"]


def default_jobs() -> int:
    """A sensible worker count: the machine's CPU count."""
    return max(1, os.cpu_count() or 1)


def sweep_configs(experiments: Optional[Sequence[str]] = None,
                  systems: Sequence[str] = ("tmk", "pvm"),
                  nprocs: Sequence[int] = (8,),
                  preset: str = "bench",
                  engine: str = "coro",
                  kernels: str = "compiled") -> List[RunConfig]:
    """The standard run grid: experiments x systems x processor counts.

    ``experiments=None`` (or the single id ``"all"``) means all twelve
    paper configurations, in figure order -- with the default arguments
    that is the 24-run grid behind the figures and tables.

    The sweep defaults to the fastest execution stack -- the ``coro``
    engine and the ``compiled`` kernels (which silently falls back to
    numpy when the extension is not built).  Both knobs are host-side
    only: every engine/kernels combination produces byte-identical
    results and shares one cache key, so a sweep run with one stack
    serves warm reads for any other.
    """
    from repro.api import RunConfig
    from repro.bench import harness
    if experiments is None or list(experiments) == ["all"]:
        experiments = list(harness.EXPERIMENTS)
    for exp_id in experiments:
        if exp_id not in harness.EXPERIMENTS:
            raise ValueError(f"unknown experiment {exp_id!r} "
                             f"(have: {', '.join(harness.EXPERIMENTS)})")
    return [RunConfig(experiment=exp_id, system=system, nprocs=n,
                      preset=preset, engine=engine, kernels=kernels)
            for exp_id in experiments
            for system in systems
            for n in nprocs]


@dataclass
class SweepRun:
    """One run of a sweep: a result, or a recorded per-run error.

    A worker process dying (``BrokenProcessPool``) or raising no longer
    kills the whole sweep: the failed run carries ``error`` (and
    ``result is None``) while every other run completes normally.
    """

    config: RunConfig
    result: Optional[RunResult]
    #: True when the run was served from the persistent cache.
    cached: bool
    #: Host wall-clock seconds this run took (~0 on a cache hit).
    wall_seconds: float
    #: Why this run produced no result (``None`` on success).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    def to_json(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_json(),
            "result": self.result.to_json() if self.result is not None
            else None,
            "cached": self.cached,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """The outcome of one sweep: every run plus aggregate accounting."""

    runs: List[SweepRun]
    jobs: int
    wall_seconds: float

    @property
    def hits(self) -> int:
        return sum(1 for r in self.runs if r.cached)

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.runs) if self.runs else 0.0

    @property
    def errors(self) -> int:
        return sum(1 for r in self.runs if not r.ok)

    def to_json(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "runs": [r.to_json() for r in self.runs],
            "cache_hits": self.hits,
            "cache_hit_rate": self.hit_rate,
            "errors": self.errors,
        }

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"{'experiment':<12} {'system':<6} {'np':>3} {'preset':<6} "
            f"{'time':>12} {'speedup':>8} {'msgs':>10} {'cached':>6}",
        ]
        for r in self.runs:
            c = r.config
            if r.result is None:
                lines.append(
                    f"{c.experiment:<12} {c.system:<6} {c.nprocs:>3} "
                    f"{c.preset:<6} ERROR: {r.error}")
                continue
            lines.append(
                f"{c.experiment:<12} {c.system:<6} {c.nprocs:>3} "
                f"{c.preset:<6} {r.result.time:>12.6f} "
                f"{r.result.speedup:>8.2f} {r.result.messages:>10} "
                f"{'yes' if r.cached else 'no':>6}")
        summary = (f"{len(self.runs)} runs, {self.jobs} jobs, "
                   f"{self.wall_seconds:.2f}s wall, "
                   f"{self.hits}/{len(self.runs)} cache hits")
        if self.errors:
            summary += f", {self.errors} error(s)"
        lines.append(summary)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
def _sweep_worker(config_json: Dict[str, Any], cache_dir: Optional[str],
                  use_cache: bool) -> Dict[str, Any]:
    """Execute one run in a worker process; everything crossing the
    process boundary is JSON (ParallelResult holds live simulator state
    and cannot -- and should not -- be pickled)."""
    from repro.api import RunConfig, run
    if cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    if os.environ.get("REPRO_SWEEP_CHAOS") == config_json.get("experiment"):
        # Test hook: simulate the worker process dying mid-run.  An env
        # var (not a monkeypatch) because spawn workers inherit the
        # parent's environment but none of its interpreter state.
        os._exit(1)
    config = RunConfig.from_json(config_json)
    started = time.perf_counter()
    result = run(config, use_cache=use_cache)
    return {
        "result": result.to_json(),
        "cached": result.cached,
        "wall_seconds": time.perf_counter() - started,
    }


def _run_serial(configs: Sequence[RunConfig], use_cache: bool,
                cache: Optional[ResultCache]) -> List[SweepRun]:
    from repro.api import run
    runs = []
    for config in configs:
        started = time.perf_counter()
        result = run(config, use_cache=use_cache, cache=cache)
        result.parallel = None  # summary-level parity with worker results
        runs.append(SweepRun(config=config, result=result,
                             cached=result.cached,
                             wall_seconds=time.perf_counter() - started))
    return runs


def run_sweep(configs: Iterable[RunConfig], jobs: int = 1, *,
              use_cache: bool = True,
              cache_dir: Optional[str] = None) -> SweepReport:
    """Run every config, using up to ``jobs`` worker processes.

    Report order always matches input order regardless of completion
    order, so serial and parallel sweeps produce identical reports.
    With ``jobs <= 1`` everything runs in the calling process (no pool).
    """
    configs = list(configs)
    jobs = min(max(1, jobs), len(configs)) if configs else 1
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
    cache = ResultCache(cache_dir) if (use_cache and cache_dir) else None
    started = time.perf_counter()
    if jobs <= 1:
        runs = _run_serial(configs, use_cache, cache)
        return SweepReport(runs=runs, jobs=1,
                           wall_seconds=time.perf_counter() - started)
    payloads = [c.to_json() for c in configs]
    runs = _run_parallel(configs, payloads, jobs, cache_dir, use_cache)
    return SweepReport(runs=runs, jobs=jobs,
                       wall_seconds=time.perf_counter() - started)


def _success_run(config: RunConfig, out: Dict[str, Any]) -> SweepRun:
    from repro.api import RunResult
    return SweepRun(config=config,
                    result=RunResult.from_json(out["result"],
                                               cached=out["cached"]),
                    cached=out["cached"],
                    wall_seconds=out["wall_seconds"])


def _error_run(config: RunConfig, message: str) -> SweepRun:
    return SweepRun(config=config, result=None, cached=False,
                    wall_seconds=0.0, error=message)


def _run_parallel(configs: Sequence[RunConfig],
                  payloads: Sequence[Dict[str, Any]], jobs: int,
                  cache_dir: Optional[str],
                  use_cache: bool) -> List[SweepRun]:
    """The submit-based parallel path, resilient to worker death.

    A worker process dying breaks the *whole* executor: every pending
    future raises ``BrokenProcessPool``, guilty and innocent alike.
    Rather than letting that kill the sweep, each affected run is
    retried in its own single-worker pool -- isolation guarantees a
    repeat crash implicates exactly that run, which is then recorded as
    a per-run error while everything else completes normally.
    """
    from concurrent.futures.process import BrokenProcessPool
    outcomes: List[Optional[SweepRun]] = [None] * len(configs)
    broken: List[int] = []
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=get_context("spawn")) as pool:
        futures = {i: pool.submit(_sweep_worker, payloads[i], cache_dir,
                                  use_cache)
                   for i in range(len(configs))}
        for i, future in futures.items():
            try:
                out = future.result()
            except BrokenProcessPool:
                broken.append(i)  # collateral or guilty: retry isolated
            except Exception as exc:  # worker raised, pool still healthy
                outcomes[i] = _error_run(
                    configs[i], f"{type(exc).__name__}: {exc}")
            else:
                outcomes[i] = _success_run(configs[i], out)
    for i in broken:
        with ProcessPoolExecutor(
                max_workers=1, mp_context=get_context("spawn")) as solo:
            try:
                out = solo.submit(_sweep_worker, payloads[i], cache_dir,
                                  use_cache).result()
            except BrokenProcessPool:
                outcomes[i] = _error_run(
                    configs[i],
                    "worker process died (twice; once in isolation)")
            except Exception as exc:
                outcomes[i] = _error_run(
                    configs[i], f"{type(exc).__name__}: {exc}")
            else:
                outcomes[i] = _success_run(configs[i], out)
    return [run for run in outcomes if run is not None]
