"""Persistent, content-addressed result cache.

Experiment results are pure functions of (experiment parameters, system,
processor count, fault/recovery/analysis/observability options, cost-model
constants, and the simulator's source code): the simulator is
deterministic, so a result computed once is valid until any of those
inputs changes.  This module stores one JSON document per cache key under
a cache directory so results survive across processes and sessions --
``repro sweep``, the figure/table renderers, and the benchmark suite all
read through it.

Keys are content-addressed: ``cache_key_from_material`` hashes the
canonical JSON encoding of the full key material, which includes a
*source-tree fingerprint* of ``src/repro/`` -- editing any simulator
source file invalidates every cached result (the safe default for a
research harness: no stale numbers after a protocol change).

Layout: ``<dir>/<key[:2]>/<key>.json`` -- sharded by key prefix so no
single directory grows unboundedly under concurrent writers -- written
crash-safely (unique temp file + ``fsync`` + ``os.replace``) so
concurrent sweep workers and serve-layer worker processes can share a
directory.  Every entry embeds a SHA-256 checksum of its payload;
``get`` detects torn or corrupt entries (a crash mid-write, a truncated
copy, bit rot) and moves them into ``<dir>/quarantine/`` instead of
re-parsing the same broken file on every lookup (a miss-loop).  The
cache directory is resolved per call from ``$REPRO_CACHE_DIR``, else
``<repo root>/.repro_cache``, else ``~/.cache/repro-sc95``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import threading
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cache_key_from_material",
    "canonical_json",
    "default_cache",
    "default_cache_dir",
    "source_fingerprint",
]

#: Version of the on-disk cache entry format.  Bump on incompatible
#: changes to the stored payload; entries with another version are misses.
CACHE_SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


#: Memoized fingerprint: (stat stamp of the source tree, digest).  The
#: stamp is the sorted tuple of (relative path, mtime_ns, size) for
#: every ``.py`` file -- a cheap ``stat`` pass.  Hashing the file
#: *contents* (hundreds of KB) happens only when the stamp changes, so
#: a long-lived server process pays one ``stat`` sweep per lookup
#: instead of a full rehash, yet still picks up source edits (unlike
#: the previous once-per-process ``lru_cache``, which a server would
#: have to restart to invalidate).  ``tools/bench_serve.py`` reports
#: the measured per-request saving in ``BENCH_serve.json``.
_FINGERPRINT_LOCK = threading.Lock()
_FINGERPRINT_MEMO: Optional[Tuple[Tuple[Tuple[str, int, int], ...], str]] = None


def _source_files() -> list:
    package_root = pathlib.Path(__file__).resolve().parent.parent
    return [(path, str(path.relative_to(package_root)))
            for path in sorted(package_root.rglob("*.py"))]


def _source_stamp() -> Tuple[Tuple[str, int, int], ...]:
    stamp = []
    for path, rel in _source_files():
        try:
            st = path.stat()
        except OSError:
            continue
        stamp.append((rel, st.st_mtime_ns, st.st_size))
    return tuple(stamp)


def source_fingerprint() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro/`` (path + bytes).

    Memoized per process, keyed on the (path, mtime, size) set: repeat
    lookups cost one ``stat`` pass, and the full content hash is only
    recomputed after an actual source edit -- a cost constant, a
    protocol change, a bug fix -- which then changes the fingerprint
    and therefore every cache key derived from it.
    """
    global _FINGERPRINT_MEMO
    stamp = _source_stamp()
    with _FINGERPRINT_LOCK:
        if _FINGERPRINT_MEMO is not None and _FINGERPRINT_MEMO[0] == stamp:
            return _FINGERPRINT_MEMO[1]
    digest = hashlib.sha256()
    for path, rel in _source_files():
        try:
            data = path.read_bytes()
        except OSError:
            continue
        digest.update(rel.encode())
        digest.update(b"\0")
        digest.update(data)
        digest.update(b"\0")
    value = digest.hexdigest()
    # Only memoize if the tree is unchanged since the stamp was taken:
    # an edit landing mid-hash would otherwise pin the *new* stamp to a
    # digest of mixed old/new content until the next mtime change.
    if _source_stamp() == stamp:
        with _FINGERPRINT_LOCK:
            _FINGERPRINT_MEMO = (stamp, value)
    return value


def cache_key_from_material(material: Dict[str, Any]) -> str:
    """Content-address arbitrary (JSON-encodable) key material."""
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache directory (env var, repo root, then home)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    # src/repro/bench/cache.py -> repo root is three parents above repro/.
    for parent in pathlib.Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent / ".repro_cache"
    return pathlib.Path.home() / ".cache" / "repro-sc95"


#: Subdirectory corrupt entries are moved into (never read back).
QUARANTINE_DIR = "quarantine"

#: Shard glob: entries live under two-hex-digit shard directories, so
#: the quarantine directory is never scanned as entries.
_SHARD_GLOB = "[0-9a-f][0-9a-f]/*.json"


class ResultCache:
    """A directory of content-addressed JSON result documents.

    Hardened for concurrent writers and hostile traffic:

    * writes are crash-safe: unique temp file in the target shard,
      ``fsync``, then atomic ``os.replace`` -- readers see either the
      old entry or the new one, never a torn write;
    * every entry embeds ``payload_sha256``; a torn or bit-rotted entry
      fails the checksum (or JSON parse) and is *quarantined* -- moved
      to ``quarantine/`` -- so the next lookup is a clean miss instead
      of re-parsing the same broken file forever;
    * version- or key-mismatched entries (legitimate format evolution,
      misfiled copies) stay in place and read as misses; the next
      ``put`` overwrites them.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = (pathlib.Path(directory) if directory is not None
                          else default_cache_dir())
        #: Per-instance traffic counters (diagnostics; the authoritative
        #: hit-rate for a sweep comes from the per-run ``cached`` flags).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry out of the lookup path (best-effort)."""
        qdir = self.directory / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / path.name
            if target.exists():
                target = qdir / f"{path.stem}.{os.getpid()}{path.suffix}"
            os.replace(path, target)
            self.quarantined += 1
        except OSError:
            pass  # concurrent quarantine/overwrite: the entry is gone

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        Unreadable, corrupt, or version-mismatched entries are misses
        (never errors): the cache is an accelerator, not a dependency.
        Corrupt entries (unparseable, or failing their embedded payload
        checksum) are additionally quarantined.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
        except ValueError:
            # Torn write or bit rot: never a valid entry again.
            self._quarantine(path)
            self.misses += 1
            return None
        if (entry.get("cache_schema") != CACHE_SCHEMA_VERSION
                or entry.get("key") != key):
            self.misses += 1
            return None
        checksum = entry.get("payload_sha256")
        if checksum is not None:
            actual = hashlib.sha256(
                canonical_json(entry.get("payload")).encode()).hexdigest()
            if actual != checksum:
                self._quarantine(path)
                self.misses += 1
                return None
        self.hits += 1
        return entry.get("payload")

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic, crash-safe)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "payload": payload,
            "payload_sha256": hashlib.sha256(
                canonical_json(payload).encode()).hexdigest(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(entry))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob(_SHARD_GLOB))

    def validate(self) -> Dict[str, int]:
        """Scan every entry; quarantine corrupt ones.

        Returns ``{"entries": ..., "corrupt": ..., "quarantined": ...}``
        where ``corrupt`` counts entries that failed parsing or their
        checksum during this scan, and ``quarantined`` counts files
        sitting in the quarantine directory afterwards.  The serve-layer
        chaos benchmark uses this for its zero-corruption assertion.
        """
        entries = corrupt = 0
        if self.directory.is_dir():
            for path in sorted(self.directory.glob(_SHARD_GLOB)):
                entries += 1
                before = self.quarantined
                self.get(path.stem)
                if self.quarantined != before:
                    corrupt += 1
        qdir = self.directory / QUARANTINE_DIR
        in_quarantine = (sum(1 for _ in qdir.glob("*.json"))
                         if qdir.is_dir() else 0)
        return {"entries": entries - corrupt, "corrupt": corrupt,
                "quarantined": in_quarantine}

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob(_SHARD_GLOB):
                path.unlink()
                removed += 1
        return removed


def default_cache() -> ResultCache:
    """A cache over the default directory (resolved at call time)."""
    return ResultCache()
