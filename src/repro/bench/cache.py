"""Persistent, content-addressed result cache.

Experiment results are pure functions of (experiment parameters, system,
processor count, fault/recovery/analysis/observability options, cost-model
constants, and the simulator's source code): the simulator is
deterministic, so a result computed once is valid until any of those
inputs changes.  This module stores one JSON document per cache key under
a cache directory so results survive across processes and sessions --
``repro sweep``, the figure/table renderers, and the benchmark suite all
read through it.

Keys are content-addressed: ``cache_key_from_material`` hashes the
canonical JSON encoding of the full key material, which includes a
*source-tree fingerprint* of ``src/repro/`` -- editing any simulator
source file invalidates every cached result (the safe default for a
research harness: no stale numbers after a protocol change).

Layout: ``<dir>/<key[:2]>/<key>.json``, written atomically (unique temp
file + ``os.replace``) so concurrent sweep workers can share a directory.
The cache directory is resolved per call from ``$REPRO_CACHE_DIR``, else
``<repo root>/.repro_cache``, else ``~/.cache/repro-sc95``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from functools import lru_cache
from typing import Any, Dict, Optional

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cache_key_from_material",
    "canonical_json",
    "default_cache",
    "default_cache_dir",
    "source_fingerprint",
]

#: Version of the on-disk cache entry format.  Bump on incompatible
#: changes to the stored payload; entries with another version are misses.
CACHE_SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro/`` (path + bytes).

    Computed once per process.  Any source edit -- a cost constant, a
    protocol change, a bug fix -- changes the fingerprint and therefore
    every cache key derived from it.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key_from_material(material: Dict[str, Any]) -> str:
    """Content-address arbitrary (JSON-encodable) key material."""
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache directory (env var, repo root, then home)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    # src/repro/bench/cache.py -> repo root is three parents above repro/.
    for parent in pathlib.Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent / ".repro_cache"
    return pathlib.Path.home() / ".cache" / "repro-sc95"


class ResultCache:
    """A directory of content-addressed JSON result documents."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = (pathlib.Path(directory) if directory is not None
                          else default_cache_dir())
        #: Per-instance traffic counters (diagnostics; the authoritative
        #: hit-rate for a sweep comes from the per-run ``cached`` flags).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss.

        Unreadable, corrupt, or version-mismatched entries are misses
        (never errors): the cache is an accelerator, not a dependency.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(entry, dict)
                or entry.get("cache_schema") != CACHE_SCHEMA_VERSION
                or entry.get("key") != key):
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic, concurrency-safe)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"cache_schema": CACHE_SCHEMA_VERSION, "key": key,
                 "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_json(entry))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed


def default_cache() -> ResultCache:
    """A cache over the default directory (resolved at call time)."""
    return ResultCache()
