"""ASCII renderings of the paper's speedup figures.

Each of Figures 1-12 plots TreadMarks and PVM speedup against processor
count (1..8) with the ideal diagonal for reference.  The renderer produces
a fixed-size character plot plus the underlying series, so benchmark logs
are self-contained.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_figure", "render_series_table"]

_HEIGHT = 17  # rows for speedups 0..8 (half-unit resolution)
_XCOLS = 4    # columns per processor count


def render_series_table(nprocs: Sequence[int], tmk: Sequence[float],
                        pvm: Sequence[float]) -> str:
    header = "nprocs " + " ".join(f"{n:>6d}" for n in nprocs)
    t_row = "TMK    " + " ".join(f"{v:>6.2f}" for v in tmk)
    p_row = "PVM    " + " ".join(f"{v:>6.2f}" for v in pvm)
    return "\n".join([header, t_row, p_row])


def render_figure(title: str, nprocs: Sequence[int], tmk: Sequence[float],
                  pvm: Sequence[float]) -> str:
    """A character plot in the style of the paper's figures.

    ``T`` marks the TreadMarks curve, ``P`` the PVM curve, ``*`` where they
    coincide, and ``.`` the ideal (speedup == nprocs) diagonal.
    """
    width = max(nprocs) * _XCOLS + 1
    grid: List[List[str]] = [[" "] * width for _ in range(_HEIGHT + 1)]

    def put(n: int, speedup: float, mark: str) -> None:
        row = _HEIGHT - int(round(min(max(speedup, 0.0), 8.0) * 2))
        col = (n - 1) * _XCOLS
        cur = grid[row][col]
        if cur in (" ", "."):
            grid[row][col] = mark
        elif cur != mark:
            grid[row][col] = "*"

    for n in range(1, max(nprocs) + 1):
        put(n, float(n), ".")
    for n, v in zip(nprocs, tmk):
        put(n, v, "T")
    for n, v in zip(nprocs, pvm):
        put(n, v, "P")

    lines = [title, ""]
    for i, row in enumerate(grid):
        speedup = (_HEIGHT - i) / 2.0
        ylabel = f"{speedup:4.1f} |" if speedup == int(speedup) else "     |"
        lines.append(ylabel + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append("      " + "".join(f"{n:<{_XCOLS}d}" for n in range(1, max(nprocs) + 1))
                 + " processors")
    lines.append("")
    lines.append(render_series_table(nprocs, tmk, pvm))
    return "\n".join(lines)
