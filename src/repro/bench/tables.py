"""Renderers for the paper's Table 1 and Table 2.

* Table 1: "Sequential Time of Applications" -- per configuration, the
  problem size and the execution time of the sequential program, which is
  the baseline all speedups divide.
* Table 2: "Messages and Data at 8 Processors" -- per configuration, the
  total number of messages and kilobytes sent by TreadMarks (UDP datagrams,
  payload plus headers) and PVM (user messages, user data).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench import harness

__all__ = ["render_table1", "render_table2"]


def _experiments(exp_ids: Optional[Sequence[str]]) -> List[str]:
    if exp_ids is None:
        return list(harness.EXPERIMENTS)
    return list(exp_ids)


def render_table1(exp_ids: Optional[Sequence[str]] = None,
                  preset: str = "bench") -> str:
    """Reproduce Table 1: sequential times and problem sizes.

    Reads through the persistent result cache (:func:`repro.api.seq_time`),
    so after a warm sweep the table renders without running anything.
    """
    from repro import api
    rows = [f"Table 1: Sequential Time of Applications ({preset} preset)",
            "",
            f"{'Program':<14}{'Problem Size':<42}{'Time (s)':>10}",
            "-" * 66]
    for exp_id in _experiments(exp_ids):
        exp = harness.EXPERIMENTS[exp_id]
        rows.append(f"{exp.label:<14}{harness.size_string(exp, preset):<42}"
                    f"{api.seq_time(exp_id, preset):>10.2f}")
    return "\n".join(rows)


def render_table2(exp_ids: Optional[Sequence[str]] = None,
                  preset: str = "bench", nprocs: int = 8) -> str:
    """Reproduce Table 2: messages and kilobytes at 8 processors."""
    rows = [f"Table 2: Messages and Data at {nprocs} Processors "
            f"({preset} preset)",
            "",
            f"{'Program':<14}{'TreadMarks':>22}{'PVM':>22}",
            f"{'':<14}{'Messages':>11}{'KB':>11}{'Messages':>11}{'KB':>11}",
            "-" * 58]
    for exp_id in _experiments(exp_ids):
        exp = harness.EXPERIMENTS[exp_id]
        tmk_msgs, tmk_kb = harness.messages_at(exp_id, "tmk", nprocs, preset)
        pvm_msgs, pvm_kb = harness.messages_at(exp_id, "pvm", nprocs, preset)
        rows.append(f"{exp.label:<14}{tmk_msgs:>11d}{tmk_kb:>11.0f}"
                    f"{pvm_msgs:>11d}{pvm_kb:>11.0f}")
    return "\n".join(rows)
