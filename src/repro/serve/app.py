"""The resilient serving layer: ``repro.serve`` over the result cache.

An asyncio HTTP service exposing the repo's evaluation surface --
``/run``, ``/speedup``, ``/figure``, ``/profile``, ``/trace`` -- over
:func:`repro.api.run` and the persistent result cache, engineered for
failure first.  Every response is classifiable (the ``X-Repro-Served``
header) as exactly one of:

* ``fresh`` -- computed now, or served from the disk cache;
* ``coalesced`` -- rode an identical in-flight computation
  (single-flight);
* ``stale-degraded`` -- a last-known-good response served because the
  circuit breaker is open, the pool is saturated, or the deadline
  cannot admit a cold run; **always** marked with a ``Degraded:``
  header so a degraded answer can never masquerade as a fresh one;
* ``shed`` -- refused (429 + ``Retry-After``) because every degradation
  rung above was unavailable.

The invariants of the ladder (DESIGN.md §5i): a degraded response is
always a *complete, previously-correct* result, never a partial one;
shedding is explicit, never a hang; and the only 5xx the server ever
originates is an *injected* fault surfacing to the request that
injected it (marked ``X-Repro-Injected``).

Conditional requests: 200 responses carry a strong ``ETag`` over the
canonical result bytes -- the same bytes every byte-identity guarantee
in this repo is stated over -- and ``If-None-Match`` yields a 304.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.bench.cache import ResultCache, canonical_json, default_cache_dir
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.http import (HttpError, Request, Response, read_request,
                              render_response)
from repro.serve.pool import (DeadlineExceeded, PoolSaturated, WorkerCrash,
                              WorkerPool)
from repro.serve.singleflight import SingleFlight

__all__ = ["ReproServer"]

_SYSTEMS = ("tmk", "pvm", "ivy")
_PRESETS = ("tiny", "bench", "paper")


class _BadRequest(Exception):
    """Client error; becomes a 400 with the message in the body."""


@dataclass
class _StaleEntry:
    body: bytes
    content_type: str
    etag: str
    stored_at: float


def _etag_for(body: bytes) -> str:
    return '"' + hashlib.sha256(body).hexdigest() + '"'


def _json_body(value: Any) -> bytes:
    return (canonical_json(value)).encode()


class ReproServer:
    """One serving instance (listener + pool + breaker + stale store)."""

    def __init__(self, config: ServeConfig,
                 cache_dir: Optional[str] = None) -> None:
        self.config = config
        self.cache_dir = (str(cache_dir) if cache_dir is not None
                          else str(default_cache_dir()))
        self.cache = ResultCache(self.cache_dir)
        self.pool = WorkerPool(
            config.workers, config.queue_depth,
            retry_limit=config.retry_limit,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            cache_dir=self.cache_dir)
        self.breaker = CircuitBreaker(config.breaker_threshold,
                                      config.breaker_cooldown)
        self.flights = SingleFlight()
        self._stale: "OrderedDict[str, _StaleEntry]" = OrderedDict()
        self.metrics: Counter = Counter()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, *, prewarm: bool = True) -> None:
        if prewarm:
            await self.pool.prewarm()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(render_response(
                        self._error(400, str(exc)), keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch_safely(request)
                keep = request.keep_alive
                writer.write(render_response(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection open: close quietly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch_safely(self, request: Request) -> Response:
        self.metrics["requests"] += 1
        try:
            return await self._dispatch(request)
        except _BadRequest as exc:
            return self._error(400, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Last-resort backstop: an unexpected error must still
            # produce a classifiable response, never a dropped
            # connection.  (Anything landing here is a server bug; the
            # chaos benchmark's no-uninjected-5xx check will flag it.)
            self.metrics["unexpected_errors"] += 1
            return Response(
                status=500,
                body=_json_body({"error": f"internal error: {exc}"}),
                headers=[("X-Repro-Served", "error")])

    def _error(self, status: int, message: str,
               headers: Optional[list] = None) -> Response:
        self.metrics["bad_requests" if status == 400 else "errors"] += 1
        return Response(status=status,
                        body=_json_body({"error": message}),
                        headers=(headers or [])
                        + [("X-Repro-Served", "rejected")])

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Response:
        if request.method != "GET":
            return Response(status=405,
                            body=_json_body({"error": "GET only"}),
                            headers=[("X-Repro-Served", "rejected")])
        path = request.path
        if path == "/healthz":
            return self._healthz()
        if path == "/metrics":
            return self._metrics_response()
        if path == "/run":
            return await self._run_endpoint(request)
        if path == "/speedup":
            return await self._speedup_endpoint(request)
        if path == "/figure":
            return await self._figure_endpoint(request)
        if path == "/profile":
            return await self._profile_endpoint(request)
        if path == "/trace":
            return await self._trace_endpoint(request)
        return Response(status=404,
                        body=_json_body({"error": f"no route {path}"}),
                        headers=[("X-Repro-Served", "rejected")])

    def _healthz(self) -> Response:
        return Response(status=200, body=_json_body({
            "status": "ok",
            "breaker": self.breaker.state,
            "inflight": self.pool.inflight,
            "flights": len(self.flights),
        }), headers=[("X-Repro-Served", "ops")])

    def _metrics_response(self) -> Response:
        counters = dict(sorted(self.metrics.items()))
        counters.update({
            "coalesced": self.flights.coalesced,
            "worker_crashes": self.pool.crashes,
            "worker_retries": self.pool.retries,
            "expired_in_queue": self.pool.expired_in_queue,
            "breaker_opens": self.breaker.opens,
            "breaker_state": self.breaker.state,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_quarantined": self.cache.quarantined,
            "stale_entries": len(self._stale),
        })
        return Response(status=200, body=_json_body(counters),
                        headers=[("X-Repro-Served", "ops")])

    # ------------------------------------------------------------------
    # Request parsing helpers
    # ------------------------------------------------------------------
    def _deadline_seconds(self, request: Request) -> float:
        raw = request.query.get("deadline_ms") \
            or request.headers.get("x-deadline-ms")
        if raw is None:
            return self.config.default_deadline
        try:
            ms = float(raw)
        except ValueError:
            raise _BadRequest(f"bad deadline_ms {raw!r}")
        if ms <= 0:
            raise _BadRequest(f"deadline_ms must be > 0, got {raw}")
        return min(ms / 1000.0, self.config.max_deadline)

    def _injection(self, request: Request) -> Optional[str]:
        inject = request.query.get("inject")
        if inject is None:
            return None
        if not self.config.allow_injection:
            raise _BadRequest("fault injection is disabled on this server")
        if inject != "crash" and not inject.startswith("slow:"):
            raise _BadRequest(f"unknown injection {inject!r}")
        return inject

    @staticmethod
    def _int_param(request: Request, name: str, default: int, *,
                   minimum: int = 1, maximum: int = 100000) -> int:
        raw = request.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise _BadRequest(f"bad {name} {raw!r}")
        if not minimum <= value <= maximum:
            raise _BadRequest(
                f"{name} must be in [{minimum}, {maximum}], got {value}")
        return value

    @staticmethod
    def _choice(request: Request, name: str, default: str,
                choices: Tuple[str, ...]) -> str:
        value = request.query.get(name, default)
        if value not in choices:
            raise _BadRequest(
                f"{name} must be one of {', '.join(choices)}; got {value!r}")
        return value

    @staticmethod
    def _experiment(request: Request) -> str:
        exp = request.query.get("experiment")
        if not exp:
            raise _BadRequest("missing ?experiment=")
        from repro.bench import harness
        if exp not in harness.EXPERIMENTS:
            raise _BadRequest(
                f"unknown experiment {exp!r} "
                f"(have: {', '.join(harness.EXPERIMENTS)})")
        return exp

    @staticmethod
    def _logical_key(request: Request) -> str:
        skip = {"deadline_ms", "inject"}
        items = sorted((k, v) for k, v in request.query.items()
                       if k not in skip)
        return request.path + "?" + "&".join(f"{k}={v}" for k, v in items)

    # ------------------------------------------------------------------
    # The degradation ladder
    # ------------------------------------------------------------------
    def _stale_get(self, logical: str) -> Optional[_StaleEntry]:
        return self._stale.get(logical)

    def _stale_put(self, logical: str, body: bytes, content_type: str,
                   etag: str) -> None:
        self._stale[logical] = _StaleEntry(
            body=body, content_type=content_type, etag=etag,
            stored_at=time.monotonic())
        self._stale.move_to_end(logical)
        while len(self._stale) > self.config.stale_capacity:
            self._stale.popitem(last=False)

    def _respond_fresh(self, request: Request, logical: str, body: bytes,
                       content_type: str, *, classification: str,
                       cache_state: str) -> Response:
        etag = _etag_for(body)
        self._stale_put(logical, body, content_type, etag)
        headers = [("ETag", etag),
                   ("X-Repro-Served", classification),
                   ("X-Repro-Cache", cache_state)]
        if request.headers.get("if-none-match") == etag:
            self.metrics["not_modified"] += 1
            return Response(status=304, headers=headers)
        self.metrics[classification] += 1
        return Response(status=200, body=body, content_type=content_type,
                        headers=headers)

    def _degrade_or_shed(self, logical: str, reason: str) -> Response:
        """The bottom half of the ladder: stale-degraded, else shed."""
        stale = self._stale_get(logical)
        if stale is not None:
            age = time.monotonic() - stale.stored_at
            self.metrics["degraded"] += 1
            return Response(
                status=200, body=stale.body,
                content_type=stale.content_type,
                headers=[("Degraded", f"stale; reason={reason}; "
                                      f"age={age:.1f}s"),
                         ("X-Repro-Served", "stale-degraded"),
                         ("ETag", stale.etag)])
        self.metrics["shed"] += 1
        self.metrics[f"shed_{reason}"] += 1
        return Response(
            status=429,
            body=_json_body({"error": "overloaded", "reason": reason}),
            headers=[("Retry-After", f"{self.config.retry_after:g}"),
                     ("X-Repro-Served", "shed"),
                     ("X-Repro-Reason", reason)])

    async def _compute(self, request: Request, logical: str,
                       flight_key: str, payload: Dict[str, Any],
                       deadline_s: float) -> Response:
        """Run the cold path through the full resilience stack."""
        deadline_at = time.monotonic() + deadline_s
        payload = dict(payload)
        payload["deadline"] = time.time() + deadline_s
        inject = payload.get("inject")
        if inject:
            flight_key = f"{flight_key}|inject={inject}"
        task = self.flights.peek(flight_key)
        if task is not None:
            task = self.flights.join(flight_key)
            created = False
        else:
            if not self.breaker.allow():
                return self._degrade_or_shed(logical, "breaker_open")
            try:
                self.pool.acquire_slot()
            except PoolSaturated:
                return self._degrade_or_shed(logical, "queue_full")
            task = self.flights.create(
                flight_key, lambda: self._run_flight(payload))
            created = True
        remaining = max(deadline_at - time.monotonic(), 0.001)
        try:
            data = await SingleFlight.wait(task, remaining)
        except asyncio.TimeoutError:
            self.metrics["deadline_timeouts"] += 1
            return self._degrade_or_shed(logical, "deadline")
        except DeadlineExceeded:
            return self._degrade_or_shed(logical, "deadline")
        except WorkerCrash as exc:
            if exc.injected:
                self.metrics["injected_errors"] += 1
                return Response(
                    status=500,
                    body=_json_body({"error": "injected worker crash"}),
                    headers=[("X-Repro-Injected", "crash"),
                             ("X-Repro-Served", "error")])
            return self._degrade_or_shed(logical, "worker_crash")
        except (ValueError, KeyError) as exc:
            # The worker rejected the request's parameters.
            raise _BadRequest(str(exc))
        body = data["body"].encode()
        classification = "fresh" if created else "coalesced"
        return self._respond_fresh(request, logical, body,
                                   data["content_type"],
                                   classification=classification,
                                   cache_state="miss")

    async def _run_flight(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The leader's computation (shared by every coalesced waiter)."""
        try:
            data = await self.pool.run_task(payload)
        except WorkerCrash:
            self.breaker.record_failure()
            raise
        except BaseException:
            # Indeterminate outcome (expired while queued, parameters
            # rejected, flight cancelled): no verdict on worker health,
            # but a half-open probe must be handed back or the breaker
            # wedges with the probe spent forever.
            self.breaker.release_probe()
            raise
        else:
            self.breaker.record_success()
            return data
        finally:
            self.pool.release_slot()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _run_endpoint(self, request: Request) -> Response:
        from repro import api
        experiment = self._experiment(request)
        system = self._choice(request, "system", "tmk", _SYSTEMS)
        nprocs = self._int_param(request, "nprocs", 8, maximum=64)
        preset = self._choice(request, "preset", "bench", _PRESETS)
        deadline_s = self._deadline_seconds(request)
        inject = self._injection(request)
        try:
            config = api.RunConfig(experiment=experiment, system=system,
                                   nprocs=nprocs, preset=preset)
        except ValueError as exc:
            raise _BadRequest(str(exc))
        logical = self._logical_key(request)
        key = api.cache_key(config)
        if inject is None:
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    result = api.RunResult.from_json(payload, cached=True,
                                                     cache_key=key)
                except (KeyError, ValueError):
                    result = None
                if result is not None:
                    return self._respond_fresh(
                        request, logical, result.to_json_bytes(),
                        "application/json", classification="fresh",
                        cache_state="hit")
        task_payload = {"kind": "run", "config": config.to_json()}
        if inject is not None:
            task_payload["inject"] = inject
        return await self._compute(request, logical, key, task_payload,
                                   deadline_s)

    async def _speedup_endpoint(self, request: Request) -> Response:
        experiment = self._experiment(request)
        system = self._choice(request, "system", "tmk", _SYSTEMS)
        preset = self._choice(request, "preset", "bench", _PRESETS)
        raw = request.query.get("nprocs", "1,2,4,8")
        try:
            nprocs_list = [int(v) for v in raw.split(",") if v.strip()]
        except ValueError:
            raise _BadRequest(f"bad nprocs list {raw!r}")
        if not nprocs_list or any(not 1 <= n <= 64 for n in nprocs_list):
            raise _BadRequest(f"bad nprocs list {raw!r}")
        deadline_s = self._deadline_seconds(request)
        inject = self._injection(request)
        logical = self._logical_key(request)
        payload = {"kind": "speedup", "experiment": experiment,
                   "system": system, "nprocs_list": nprocs_list,
                   "preset": preset}
        if inject is not None:
            payload["inject"] = inject
        return await self._compute(request, logical, logical, payload,
                                   deadline_s)

    async def _figure_endpoint(self, request: Request) -> Response:
        experiment = self._experiment(request)
        preset = self._choice(request, "preset", "bench",
                              ("bench", "paper"))
        nprocs_csv = request.query.get("nprocs", "1,2,4,8")
        try:
            parsed = [int(v) for v in nprocs_csv.split(",")]
        except ValueError:
            raise _BadRequest(f"bad nprocs list {nprocs_csv!r}")
        if not parsed or any(not 1 <= n <= 64 for n in parsed):
            raise _BadRequest(f"bad nprocs list {nprocs_csv!r}")
        deadline_s = self._deadline_seconds(request)
        inject = self._injection(request)
        logical = self._logical_key(request)
        payload = {"kind": "figure", "experiment": experiment,
                   "nprocs_csv": nprocs_csv, "preset": preset}
        if inject is not None:
            payload["inject"] = inject
        return await self._compute(request, logical, logical, payload,
                                   deadline_s)

    async def _profile_endpoint(self, request: Request) -> Response:
        experiment = self._experiment(request)
        system = self._choice(request, "system", "both",
                              ("tmk", "pvm", "both"))
        nprocs = self._int_param(request, "nprocs", 8, maximum=64)
        preset = self._choice(request, "preset", "tiny", _PRESETS)
        deadline_s = self._deadline_seconds(request)
        inject = self._injection(request)
        logical = self._logical_key(request)
        payload = {"kind": "profile", "experiment": experiment,
                   "system": system, "nprocs": nprocs, "preset": preset}
        if inject is not None:
            payload["inject"] = inject
        return await self._compute(request, logical, logical, payload,
                                   deadline_s)

    async def _trace_endpoint(self, request: Request) -> Response:
        app = request.query.get("app")
        if not app:
            raise _BadRequest("missing ?app=")
        from repro.apps import base
        try:
            base.get_app(app)
        except (KeyError, ValueError) as exc:
            raise _BadRequest(str(exc))
        nprocs = self._int_param(request, "nprocs", 2, maximum=64)
        limit = self._int_param(request, "limit", 60)
        deadline_s = self._deadline_seconds(request)
        inject = self._injection(request)
        logical = self._logical_key(request)
        payload = {"kind": "trace", "app": app, "nprocs": nprocs,
                   "limit": limit}
        if inject is not None:
            payload["inject"] = inject
        return await self._compute(request, logical, logical, payload,
                                   deadline_s)
