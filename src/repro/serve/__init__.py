"""Resilient HTTP serving layer over the result cache.

``repro serve`` turns the single-process evaluation pipeline into a
service that stays correct and responsive when traffic is hostile:
per-request deadlines propagated into a bounded worker pool,
single-flight coalescing of identical cold requests, load shedding with
``Retry-After``, a circuit breaker over worker crashes, and graceful
degradation to header-marked stale results.  See DESIGN.md §5i.
"""

from repro.serve.app import ReproServer
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.pool import (DeadlineExceeded, PoolSaturated, WorkerCrash,
                              WorkerPool)
from repro.serve.singleflight import SingleFlight

__all__ = [
    "CircuitBreaker",
    "DeadlineExceeded",
    "PoolSaturated",
    "ReproServer",
    "ServeConfig",
    "SingleFlight",
    "WorkerCrash",
    "WorkerPool",
]
