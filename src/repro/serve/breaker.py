"""Circuit breaker over worker-pool health.

Repeated worker crashes mean cold computations are currently hopeless;
hammering the pool with more of them just multiplies the damage (every
process-pool break also kills innocent in-flight work).  The breaker
counts *consecutive* crashes; at the threshold it opens, and while open
the service stops admitting cold runs -- requests fall down the
degradation ladder (stale-degraded if a last-known-good response
exists, shed otherwise).  After a cooldown one probe request is let
through (half-open); success closes the breaker, another crash reopens
it for a fresh cooldown.

The monotonic clock is injectable so tests drive state transitions
without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after N consecutive failures; probe after a cooldown."""

    def __init__(self, threshold: int, cooldown: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_out = False
        #: Times the breaker transitioned closed/half-open -> open.
        self.opens = 0

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.cooldown:
            self._state = HALF_OPEN
            self._probe_out = False

    def allow(self) -> bool:
        """May a cold computation start right now?

        In the half-open state exactly one caller gets a True (the
        probe); everyone else keeps degrading until its outcome lands.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probe_out:
            self._probe_out = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = CLOSED
        self._probe_out = False

    def release_probe(self) -> None:
        """Re-arm half-open after an *indeterminate* probe outcome.

        A probe flight can end without a verdict on worker health -- its
        deadline expired while it was queued, or the worker rejected the
        request's parameters.  Neither success nor failure applies, but
        the probe slot must not stay consumed forever (``allow()`` would
        refuse every future cold request); hand it back so the next
        request probes instead.
        """
        if self._state == HALF_OPEN:
            self._probe_out = False

    def record_failure(self) -> None:
        self._failures += 1
        self._maybe_half_open()
        if self._state == HALF_OPEN or self._failures >= self.threshold:
            if self._state != OPEN:
                self.opens += 1
            self._state = OPEN
            self._opened_at = self._clock()
            self._probe_out = False
