"""Minimal HTTP/1.1 request/response handling over asyncio streams.

The container ships no HTTP framework, and the service needs very
little: parse ``GET /path?query`` plus headers, write a status line,
headers, and a body, and keep the connection alive between requests.
This module is that -- a deliberately small, strict subset of HTTP/1.1
(no chunked encoding, no pipelining guarantees beyond serial handling,
bounded header sizes) shared by the server, the chaos load generator,
and the tests.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = ["HttpError", "Request", "Response", "read_request",
           "read_response", "render_response", "render_request"]

#: Bounds that keep a hostile client from ballooning server memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or oversized request (maps to a 400 response)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response; ``render_response`` serializes it."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: List[Tuple[str, str]] = field(default_factory=list)

    def header(self, name: str) -> Optional[str]:
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None


async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            # A single line beyond the StreamReader limit: readline()
            # raises instead of returning, so map it to a 400 rather
            # than letting it escape as an unhandled exception.
            raise HttpError("header line too long")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError("headers too large")
        if line in (b"\r\n", b"\n"):
            return headers
        if not line:
            raise HttpError("connection closed inside headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` when the client closed the connection."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError("connection closed inside the request line")
    except asyncio.LimitOverrunError:
        raise HttpError("request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(f"unsupported HTTP version {version!r}")
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers = await _read_headers(reader)
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(f"bad Content-Length {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(f"unacceptable Content-Length {n}")
        body = await reader.readexactly(n)
    return Request(method=method.upper(), target=target,
                   path=split.path or "/", query=query, headers=headers,
                   body=body)


def render_response(response: Response, *, keep_alive: bool = True) -> bytes:
    """Serialize a :class:`Response` (adds framing headers)."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    body = b"" if response.status == 304 else response.body
    seen = {key.lower() for key, _ in response.headers}
    if response.status != 304 and "content-type" not in seen:
        lines.append(f"Content-Type: {response.content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
    for key, value in response.headers:
        lines.append(f"{key}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def render_request(method: str, target: str,
                   headers: Optional[Dict[str, str]] = None) -> bytes:
    """Serialize a bodyless client request (the load generator's half)."""
    lines = [f"{method} {target} HTTP/1.1", "Host: repro-serve"]
    for key, value in (headers or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def read_response(reader: asyncio.StreamReader) -> Response:
    """Parse one response from a server stream (client half)."""
    line = (await reader.readline()).decode("latin-1").strip()
    if not line:
        raise HttpError("connection closed before the status line")
    parts = line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(f"malformed status line {line!r}")
    status = int(parts[1])
    headers = await _read_headers(reader)
    body = b""
    length = headers.get("content-length")
    if length is not None and int(length) > 0:
        body = await reader.readexactly(int(length))
    return Response(status=status, body=body,
                    content_type=headers.get("content-type", ""),
                    headers=list(headers.items()))
