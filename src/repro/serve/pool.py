"""Bounded worker pool: admission control, deadline propagation, retry.

Cold computations run in worker *processes* (``ProcessPoolExecutor``
with the ``spawn`` start method, the same isolation discipline as the
sweep runner).  The pool wraps the executor with the failure machinery
the serving layer needs:

* **Admission.**  ``workers + queue_depth`` slots; acquiring past that
  raises :class:`PoolSaturated` synchronously so the caller can shed
  (429) without ever queueing unbounded work.
* **Deadline propagation.**  Each task carries an absolute wall-clock
  deadline.  The server side stops waiting at the deadline; the worker
  side checks the same deadline *before starting* a queued task, so a
  request that expired while waiting never burns a worker slot (it
  returns an ``{"expired": true}`` marker instead of computing).  A
  task that already *started* runs to completion and warms the result
  cache -- abandoned, not wasted.
* **Retry on transient worker death.**  A worker process dying breaks
  the whole executor (every pending future raises
  ``BrokenProcessPool``).  The pool rebuilds the executor and retries
  innocent tasks with jittered exponential backoff; a task that itself
  injected the crash is not retried.  Retries exhausted raise
  :class:`WorkerCrash` for the circuit breaker to count.
* **Chaos hooks.**  A task payload may carry ``inject: "crash"`` (the
  worker calls ``os._exit``) or ``inject: "slow:SECONDS"``; the serve
  layer only forwards these when injection is enabled.
"""

from __future__ import annotations

import asyncio
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Dict, Optional

__all__ = ["DeadlineExceeded", "PoolSaturated", "WorkerCrash",
           "WorkerPool", "serve_worker"]


class PoolSaturated(Exception):
    """Every worker and queue slot is taken: shed the request."""


class WorkerCrash(Exception):
    """A worker died and retries are exhausted (or were not allowed)."""

    def __init__(self, message: str, *, injected: bool) -> None:
        super().__init__(message)
        self.injected = injected


class DeadlineExceeded(Exception):
    """The task's deadline passed before a result was produced."""


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _worker_init(cache_dir: Optional[str]) -> None:
    if cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = cache_dir


def serve_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one serving task inside a worker process.

    Payloads are plain JSON dicts (the same discipline as the sweep
    workers): ``kind`` selects the computation, ``deadline`` is an
    absolute ``time.time()`` instant, ``inject`` is the chaos hook.
    Returns ``{"body": str, "content_type": str}`` or the expired
    marker.
    """
    inject = payload.get("inject")
    if inject == "crash":
        os._exit(1)  # simulated worker death: the pool must recover
    deadline = payload.get("deadline")
    if deadline is not None and time.time() >= deadline:
        # Expired while queued: hand the slot back without computing.
        return {"expired": True}
    if inject and inject.startswith("slow:"):
        time.sleep(float(inject.split(":", 1)[1]))
    kind = payload["kind"]
    from repro import api
    if kind == "run":
        result = api.run(api.RunConfig.from_json(payload["config"]))
        return {"body": result.to_json_bytes().decode(),
                "content_type": "application/json",
                "cached": result.cached}
    if kind == "speedup":
        from repro.bench.cache import canonical_json
        series = api.speedup_series(
            payload["experiment"], payload["system"],
            payload["nprocs_list"], payload["preset"])
        body = canonical_json({
            "experiment": payload["experiment"],
            "system": payload["system"],
            "nprocs": payload["nprocs_list"],
            "preset": payload["preset"],
            "speedups": series,
        })
        return {"body": body, "content_type": "application/json"}
    if kind == "figure":
        from repro.cli import cmd_figure
        text = cmd_figure(payload["experiment"], payload["nprocs_csv"],
                          payload["preset"])
        return {"body": text, "content_type": "text/plain"}
    if kind == "profile":
        from repro.cli import cmd_profile
        text = cmd_profile(payload["experiment"], payload["system"],
                           payload["nprocs"], payload["preset"])
        return {"body": text, "content_type": "text/plain"}
    if kind == "trace":
        from repro.cli import cmd_trace
        text = cmd_trace(payload["app"], payload["nprocs"],
                         payload["limit"])
        return {"body": text, "content_type": "text/plain"}
    raise ValueError(f"unknown task kind {kind!r}")


def _warmup() -> bool:
    """Imported-and-ready probe (pays the interpreter start-up cost)."""
    import repro.api  # noqa: F401
    return True


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class WorkerPool:
    """The asyncio-facing pool wrapper."""

    def __init__(self, workers: int, queue_depth: int, *,
                 retry_limit: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 1.0,
                 cache_dir: Optional[str] = None) -> None:
        self.workers = workers
        self.slots = workers + queue_depth
        self.retry_limit = retry_limit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.cache_dir = cache_dir
        self._inflight = 0
        self._generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._rng = random.Random()
        #: Diagnostics for /metrics and the chaos benchmark.
        self.crashes = 0
        self.retries = 0
        self.expired_in_queue = 0

    # -- executor lifecycle --------------------------------------------
    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=get_context("spawn"),
            initializer=_worker_init, initargs=(self.cache_dir,))

    def _current_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def _note_broken(self, generation: int) -> None:
        """Replace the broken executor (only once per break)."""
        self.crashes += 1
        if generation == self._generation:
            self._generation += 1
            broken, self._executor = self._executor, None
            if broken is not None:
                broken.shutdown(wait=False)

    async def prewarm(self) -> None:
        """Pay each worker's interpreter+import start-up cost up front."""
        loop = asyncio.get_running_loop()
        executor = self._current_executor()
        futures = [loop.run_in_executor(executor, _warmup)
                   for _ in range(self.workers)]
        await asyncio.gather(*futures, return_exceptions=True)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- admission ------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    def acquire_slot(self) -> None:
        """Claim an admission slot or raise :class:`PoolSaturated`."""
        if self._inflight >= self.slots:
            raise PoolSaturated(
                f"{self._inflight} tasks in flight >= {self.slots} slots")
        self._inflight += 1

    def release_slot(self) -> None:
        self._inflight = max(0, self._inflight - 1)

    # -- execution ------------------------------------------------------
    async def run_task(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Run one already-admitted task to completion (or failure).

        Never cancelled by request deadlines -- callers wait on a
        shielded view of this coroutine, so an abandoned computation
        still completes and warms the cache for the next request.
        """
        loop = asyncio.get_running_loop()
        injected = payload.get("inject") == "crash"
        attempts = 0
        while True:
            generation = self._generation
            executor = self._current_executor()
            try:
                result = await loop.run_in_executor(
                    executor, serve_worker, payload)
            # NOTE: BrokenProcessPool subclasses RuntimeError, so it
            # must be caught before the shutdown-race clause below.
            except BrokenProcessPool:
                self._note_broken(generation)
                if injected:
                    raise WorkerCrash("injected worker crash",
                                      injected=True)
                if attempts >= self.retry_limit:
                    raise WorkerCrash(
                        f"worker died {attempts + 1} times running this "
                        "task", injected=False)
                attempts += 1
                self.retries += 1
                cap = min(self.backoff_cap,
                          self.backoff_base * (2 ** attempts))
                await asyncio.sleep(self._rng.uniform(0, cap))
                continue
            except RuntimeError as exc:
                # Lost the race with a concurrent pool rebuild: the
                # captured executor was shut down between lookup and
                # submit.  Retry against the fresh one (no crash count).
                if "shutdown" not in str(exc):
                    raise
                if attempts >= self.retry_limit:
                    raise WorkerCrash("pool kept breaking under this task",
                                      injected=False)
                attempts += 1
                continue
            if result.get("expired"):
                self.expired_in_queue += 1
                raise DeadlineExceeded("task expired while queued")
            return result
