"""Single-flight coalescing: N identical cold requests, one computation.

A popular result that is not yet cached is the serving layer's worst
stampede: every concurrent request for it would admit its own worker
task and simulate the same deterministic run N times.  Single-flight
keys each in-progress computation; the first request (the *leader*)
creates the flight and occupies a pool slot, every later identical
request *joins* it for free and is marked coalesced.

Each waiter applies its own deadline to a shielded view of the flight,
so a short-deadline follower can give up (and degrade) without
cancelling the computation out from under the leader -- and a flight
whose leader times out still completes and warms the cache.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight computations keyed by cache key."""

    def __init__(self) -> None:
        self._flights: Dict[str, asyncio.Task] = {}
        #: Requests that joined an existing flight (diagnostics).
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._flights)

    def peek(self, key: str) -> Any:
        """The live flight for ``key``, or ``None``.

        Lets the caller decide *synchronously* whether a new request
        needs an admission slot (leader) or rides along for free
        (follower) -- there is no await between peek and create, so the
        check cannot race on the single-threaded event loop.
        """
        existing = self._flights.get(key)
        if existing is not None and existing.done():
            return None
        return existing

    def join(self, key: str) -> asyncio.Task:
        """Ride an existing flight (counts as coalesced)."""
        task = self._flights[key]
        self.coalesced += 1
        return task

    def create(self, key: str,
               factory: Callable[[], Awaitable[Any]]) -> asyncio.Task:
        """Start a new flight as its leader.

        The leader's ``factory()`` coroutine runs as a task that keeps
        running even if every waiter abandons it; the flight is
        deregistered the moment it completes (success *or* failure --
        a failed flight must not poison later requests).
        """
        task = asyncio.ensure_future(factory())
        self._flights[key] = task

        def _deregister(_t: asyncio.Task) -> None:
            # Only remove our own registration: a done flight may have
            # already been replaced by a newer one under the same key.
            if self._flights.get(key) is task:
                del self._flights[key]

        task.add_done_callback(_deregister)
        return task

    @staticmethod
    async def wait(task: asyncio.Task, timeout: float) -> Any:
        """Await a flight under this waiter's own deadline.

        Raises ``asyncio.TimeoutError`` for the waiter without
        cancelling the shared task.
        """
        return await asyncio.wait_for(asyncio.shield(task), timeout)
