"""Serving-layer configuration.

One frozen dataclass holds every tunable of the resilient HTTP service:
the listen address, the worker-pool shape (processes + admission queue),
the failure policy (deadlines, retry/backoff, circuit breaker), and the
degradation policy (stale store size, Retry-After hint).  The CLI
(``repro serve``) and the chaos benchmark construct one of these; tests
construct tighter ones (one worker, zero queue) to force each branch of
the degradation ladder deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes the service's behavior under load."""

    host: str = "127.0.0.1"
    #: TCP port; 0 asks the OS for an ephemeral port (the resolved port
    #: is printed by ``repro serve`` and exposed on the started server).
    port: int = 8095

    # -- worker pool + admission ---------------------------------------
    #: Worker *processes* executing cold simulations (spawn start
    #: method; cache reads/writes go through the shared disk cache).
    workers: int = 2
    #: Admitted-but-not-yet-running requests beyond the worker count.
    #: A cold request arriving when ``workers + queue_depth`` slots are
    #: taken is shed (429 + Retry-After) -- bounded memory, bounded
    #: queueing delay.
    queue_depth: int = 8

    # -- deadlines ------------------------------------------------------
    #: Per-request compute budget in seconds when the client sends no
    #: ``deadline_ms`` query parameter / ``X-Deadline-Ms`` header.
    default_deadline: float = 30.0
    #: Hard ceiling on any client-requested deadline.
    max_deadline: float = 300.0

    # -- transient-failure policy --------------------------------------
    #: Retries after a *transient* worker death (the pool broke under a
    #: request that did not itself inject a crash) before giving up.
    retry_limit: int = 3
    #: Jittered exponential backoff between retries: attempt ``n``
    #: sleeps ``uniform(0, min(backoff_cap, backoff_base * 2**n))``.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    # -- circuit breaker ------------------------------------------------
    #: Consecutive worker crashes that trip the breaker open.
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before a half-open probe.
    breaker_cooldown: float = 5.0

    # -- graceful degradation ------------------------------------------
    #: Last-known-good responses kept in memory per logical request
    #: (serves ``Degraded: stale`` answers while the breaker is open or
    #: a deadline cannot admit a cold run).
    stale_capacity: int = 256
    #: ``Retry-After`` seconds attached to shed (429) responses.
    retry_after: float = 1.0

    # -- chaos hooks ----------------------------------------------------
    #: Honor ``?inject=crash`` / ``?inject=slow:SECONDS`` requests
    #: (worker kill / slow-run injection).  Only the chaos benchmark and
    #: the tests enable this; injected failures are the *only* 5xx the
    #: server ever originates.
    allow_injection: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth}")
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise ValueError("deadlines must be > 0")
        if self.retry_limit < 0:
            raise ValueError(
                f"retry_limit must be >= 0, got {self.retry_limit}")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1, got "
                             f"{self.breaker_threshold}")
