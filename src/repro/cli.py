"""Command-line interface: ``python -m repro <command>``.

Commands::

    list                       the twelve experiment configurations
    run EXP [options]          one simulated run, with stats + breakdown
    sweep EXP.. [options]      the whole run grid, fanned across CPU cores
                               through the persistent result cache
                               (``repro sweep all --jobs 8``)
    serve [options]            HTTP service over the result cache with
                               deadlines, backpressure, coalescing, and
                               graceful degradation (``repro serve``)
    figure EXP [options]       a paper figure (speedup curves)
    table1 / table2 [options]  the paper's tables
    verify [EXP] [options]     protocol verification: explore tie-break
                               schedules of one experiment (deadlocks,
                               invariant violations, result divergence)
                               and/or run the protocol lints (--lint)
    trace APP [options]        a traced TreadMarks run (protocol timeline);
                               ``--perfetto OUT.json`` exports a Chrome/
                               Perfetto trace of the same run
    profile EXP [options]      span-based time attribution: where each
                               processor's time went, and (TreadMarks) how
                               much each of the paper's four mechanisms cost

Everything prints to stdout; all commands accept ``--preset paper`` for
the paper's full problem sizes (slow).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TreadMarks vs PVM on a simulated network of "
                    "workstations (Lu et al., SC '95 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment configurations")

    def add_fault_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--loss-rate", type=float, default=0.0,
                       help="probability each message/segment is dropped "
                            "(enables the user-level reliability protocol)")
        p.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the deterministic fault schedule")
        p.add_argument("--fault-category", default=None,
                       help="comma-separated message categories to fault "
                            "(default: all)")
        p.add_argument("--crash", action="append", type=crash_spec,
                       default=None, metavar="NODE@TIME",
                       help="permanently crash NODE at virtual TIME "
                            "seconds (repeatable); the run detects the "
                            "failure and recovers per --ft-mode")
        p.add_argument("--checkpoint-interval", type=checkpoint_interval,
                       default=0.0, metavar="SECONDS",
                       help="coordinated checkpoint spacing in virtual "
                            "seconds (0 = disabled; recovery then "
                            "restarts from the beginning)")

    run = sub.add_parser("run", help="run one experiment configuration")
    run.add_argument("experiment", help="experiment id (fig01..fig12)")
    run.add_argument("--system", choices=("tmk", "pvm"), default="tmk")
    run.add_argument("--nprocs", type=int, default=8)
    run.add_argument("--preset", choices=("bench", "paper"), default="bench")
    run.add_argument("--race-check", choices=("off", "report", "strict"),
                     default="off",
                     help="happens-before race detection (tmk only): "
                          "'report' collects findings, 'strict' fails the "
                          "run at the first race")
    run.add_argument("--false-sharing-report", action="store_true",
                     help="print the per-page false-sharing analysis "
                          "(tmk only)")
    run.add_argument("--ft-mode", choices=("rollback", "mask"),
                     default="rollback",
                     help="fault-tolerance strategy for --crash: "
                          "'rollback' (checkpoint + re-execute, the "
                          "default) or 'mask' (SC-ABD quorum replication; "
                          "tmk only -- minority replica crashes are "
                          "absorbed with no rollback at all)")
    run.add_argument("--replicas", type=int, default=3, metavar="N",
                     help="page-replica servers in --ft-mode mask "
                          "(N replicas mask up to (N-1)//2 crashes; "
                          "default 3)")
    run.add_argument("--invariants", action="store_true",
                     help="attach the runtime protocol-invariant monitors "
                          "(repro.verify): a broken coherence rule aborts "
                          "the run with the violated rule and both events")
    run.add_argument("--engine", choices=("threads", "coro"),
                     default="threads",
                     help="execution backend: 'threads' (one host thread "
                          "per simulated processor) or 'coro' (cooperative "
                          "continuations; byte-identical results, scales "
                          "to 1024 nodes)")
    run.add_argument("--kernels", choices=("pure", "numpy", "compiled"),
                     default="numpy",
                     help="page-ops kernel backend (repro.kernels): 'pure' "
                          "(reference), 'numpy' (vectorized, default), or "
                          "'compiled' (C extension; falls back to numpy "
                          "when unbuilt) -- byte-identical results")
    add_fault_flags(run)

    verify = sub.add_parser(
        "verify",
        help="verify the protocols: explore tie-break schedules of one "
             "experiment (invariants on, results compared across "
             "schedules), and/or run the protocol-implementation lints")
    verify.add_argument("experiment", nargs="?", default=None,
                        help="experiment id (fig01..fig12); omit to run "
                             "only --lint")
    verify.add_argument("--system", choices=("tmk", "ivy", "pvm", "scabd"),
                        default="tmk",
                        help="runtime to explore ('scabd' = TreadMarks "
                             "programs over SC-ABD quorum replication)")
    verify.add_argument("--nprocs", type=int, default=3)
    verify.add_argument("--preset", choices=("tiny", "bench", "paper"),
                        default="tiny")
    verify.add_argument("--schedules", type=int, default=25,
                        help="schedules to explore (default 25)")
    verify.add_argument("--mode", choices=("random", "dfs"),
                        default="random",
                        help="'random': seeded random walks (replayable "
                             "by seed); 'dfs': systematic bounded-"
                             "preemption enumeration")
    verify.add_argument("--seed", type=int, default=0,
                        help="first random-walk seed (mode=random)")
    verify.add_argument("--max-flips", type=int, default=2,
                        help="preemption bound for mode=dfs (default 2)")
    verify.add_argument("--no-invariants", action="store_true",
                        help="explore schedules without the runtime "
                             "invariant monitors")
    verify.add_argument("--lint", action="store_true",
                        help="also run the protocol-implementation lints "
                             "(PRT001-PRT008)")
    verify.add_argument("--lint-paths", default="src/repro",
                        help="comma-separated paths for --lint "
                             "(default: src/repro)")

    sweep = sub.add_parser(
        "sweep",
        help="run many configurations in parallel worker processes, "
             "reading and populating the persistent result cache")
    sweep.add_argument("experiment", nargs="+",
                       help="experiment ids (fig01..fig12), or 'all'")
    sweep.add_argument("--systems", default="tmk,pvm",
                       help="comma-separated systems (default: tmk,pvm)")
    sweep.add_argument("--nprocs", default="8",
                       help="comma-separated processor counts (default: 8)")
    sweep.add_argument("--preset", choices=("tiny", "bench", "paper"),
                       default="bench")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: the CPU count)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore and do not populate the result cache")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: "
                            "$REPRO_CACHE_DIR or <repo>/.repro_cache)")
    sweep.add_argument("--engine", choices=("threads", "coro"),
                       default="coro",
                       help="execution backend for the sweep's runs "
                            "(default: coro, the faster one)")
    sweep.add_argument("--kernels", choices=("pure", "numpy", "compiled"),
                       default="compiled",
                       help="page-ops kernel backend (default: compiled, "
                            "falling back to numpy when the extension is "
                            "not built; run tools/build_kernels.py)")
    sweep.add_argument("--json", metavar="OUT.json", default=None,
                       help="also write the full sweep report as JSON")

    serve = sub.add_parser(
        "serve",
        help="serve run/speedup/figure/profile/trace over HTTP through "
             "the result cache, with deadlines, backpressure, and "
             "graceful degradation (see DESIGN.md §5i)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8095,
                       help="listen port (0 = pick an ephemeral port; "
                            "the resolved port is printed)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes for cold runs (default 2)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="admitted requests beyond the worker count "
                            "before shedding with 429 (default 8)")
    serve.add_argument("--deadline-ms", type=float, default=30000.0,
                       help="default per-request deadline in ms "
                            "(clients override with ?deadline_ms=)")
    serve.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: "
                            "$REPRO_CACHE_DIR or <repo>/.repro_cache)")
    serve.add_argument("--chaos", action="store_true",
                       help="honor ?inject=crash / ?inject=slow:SECONDS "
                            "fault-injection requests (benchmarks and "
                            "tests only)")

    figure = sub.add_parser("figure", help="render one paper figure")
    figure.add_argument("experiment", help="experiment id (fig01..fig12)")
    figure.add_argument("--nprocs", default="1,2,4,8",
                        help="comma-separated processor counts")
    figure.add_argument("--preset", choices=("bench", "paper"),
                        default="bench")

    for name, help_text in (("table1", "sequential times (Table 1)"),
                            ("table2", "messages and data (Table 2)")):
        table = sub.add_parser(name, help=help_text)
        table.add_argument("--preset", choices=("bench", "paper"),
                           default="bench")

    trace = sub.add_parser("trace",
                           help="run an app under TreadMarks with the "
                                "protocol trace enabled")
    trace.add_argument("app", help="application name (e.g. sor, is, tsp)")
    trace.add_argument("--nprocs", type=int, default=2)
    trace.add_argument("--limit", type=int, default=60,
                       help="max trace lines to print")
    trace.add_argument("--perfetto", metavar="OUT.json", default=None,
                       help="also write the run's span timeline as "
                            "Chrome/Perfetto trace-event JSON (open with "
                            "ui.perfetto.dev or chrome://tracing)")
    add_fault_flags(trace)

    profile = sub.add_parser(
        "profile",
        help="time-attribution profile (compute/wire/protocol/stalls "
             "per processor, plus TreadMarks mechanism costs)")
    profile.add_argument("experiment",
                         help="experiment id (fig01..fig12) or 'all'")
    profile.add_argument("--system", choices=("tmk", "pvm", "both"),
                         default="both")
    profile.add_argument("--nprocs", type=int, default=8)
    profile.add_argument("--preset", choices=("tiny", "bench", "paper"),
                         default="tiny")
    return parser


def crash_spec(text: str):
    """argparse type for ``--crash NODE@TIME``."""
    import argparse as _argparse
    node_s, sep, time_s = text.partition("@")
    try:
        if not sep:
            raise ValueError
        node, time = int(node_s), float(time_s)
    except ValueError:
        raise _argparse.ArgumentTypeError(
            f"malformed crash spec {text!r}: expected NODE@TIME "
            "(e.g. 2@0.5 kills node 2 at t=0.5 virtual seconds)")
    if node < 0:
        raise _argparse.ArgumentTypeError(
            f"crash node must be >= 0, got {node}")
    if time < 0:
        raise _argparse.ArgumentTypeError(
            f"crash time must be >= 0, got {time}")
    return (node, time)


def checkpoint_interval(text: str) -> float:
    """argparse type for ``--checkpoint-interval SECONDS``."""
    import argparse as _argparse
    try:
        value = float(text)
    except ValueError:
        raise _argparse.ArgumentTypeError(
            f"malformed checkpoint interval {text!r}: expected a number "
            "of virtual seconds")
    if value < 0:
        raise _argparse.ArgumentTypeError(
            f"checkpoint interval must be >= 0, got {value}")
    return value


def fault_plan(loss_rate: float, fault_seed: int,
               fault_category: Optional[str], crash=None):
    """Build a :class:`~repro.sim.faults.FaultPlan` from the CLI flags
    (``None`` when no faults were requested)."""
    if not loss_rate and not crash:
        return None
    from repro.sim.faults import FaultPlan
    categories = None
    if fault_category:
        categories = frozenset(c.strip() for c in fault_category.split(",")
                               if c.strip())
    try:
        return FaultPlan(seed=fault_seed, loss=loss_rate,
                         categories=categories, crash_at=tuple(crash or ()))
    except ValueError as exc:  # e.g. two --crash entries for one node
        raise SystemExit(f"bad fault plan: {exc}")


# ----------------------------------------------------------------------
# Command bodies (return the text they print, for testability)
# ----------------------------------------------------------------------
def cmd_list() -> str:
    from repro.bench import harness
    rows = [f"{'id':<8}{'figure':<8}{'label':<14}{'bench size':<40}",
            "-" * 70]
    for exp_id, exp in harness.EXPERIMENTS.items():
        rows.append(f"{exp_id:<8}{exp.figure:<8}{exp.label:<14}"
                    f"{harness.size_string(exp):<40}")
    return "\n".join(rows)


def cmd_run(experiment: str, system: str, nprocs: int, preset: str,
            faults=None, race_check: str = "off",
            false_sharing: bool = False,
            checkpoint_every: float = 0.0,
            ft_mode: str = "rollback", replicas: int = 3,
            invariants: bool = False, engine: str = "threads",
            kernels: str = "numpy") -> str:
    from repro import api
    from repro.bench import harness
    from repro.bench.analysis import decompose, render_breakdown
    if experiment not in harness.EXPERIMENTS:
        raise SystemExit(f"unknown experiment {experiment!r}; "
                         f"try: {', '.join(harness.EXPERIMENTS)}")
    analysis = None
    if race_check != "off" or false_sharing:
        if system != "tmk":
            raise SystemExit("--race-check/--false-sharing-report require "
                             "--system tmk")
        from repro.analysis import AnalysisConfig
        analysis = AnalysisConfig(race_check=race_check,
                                  false_sharing=false_sharing)
    from repro.sim.recovery import NodeFailure
    replication = None
    if ft_mode == "mask":
        if system != "tmk":
            raise SystemExit("--ft-mode mask requires --system tmk")
        if checkpoint_every:
            raise SystemExit("--ft-mode mask has no rollback: drop "
                             "--checkpoint-interval (masking and "
                             "checkpointing are alternatives)")
        if analysis is not None:
            raise SystemExit("--race-check/--false-sharing-report cannot "
                             "run under --ft-mode mask")
        from repro.scabd import ReplicationConfig
        try:
            replication = ReplicationConfig(replicas=replicas)
        except ValueError as exc:
            raise SystemExit(f"bad --replicas: {exc}")
    recovery = None
    #: In mask mode the crash targets may be replica servers: pids
    #: nprocs .. nprocs+replicas-1, appended after the application ranks.
    crash_range = nprocs + (replicas if replication is not None else 0)
    for node, _ in (faults.crash_at if faults is not None else ()):
        if node >= crash_range:
            raise SystemExit(
                f"--crash node {node} out of range: the run has "
                f"{crash_range} processors"
                + (f" ({nprocs} application + {replicas} replica)"
                   if replication is not None else ""))
    if replication is None and (
            checkpoint_every or (faults is not None and faults.crash_at)):
        from repro.sim.recovery import RecoveryConfig
        recovery = RecoveryConfig(checkpoint_interval=checkpoint_every)
    exp = harness.EXPERIMENTS[experiment]
    config = api.RunConfig(experiment=experiment, system=system,
                           nprocs=nprocs, preset=preset, faults=faults,
                           analysis=analysis, recovery=recovery,
                           replication=replication, invariants=invariants,
                           engine=engine, kernels=kernels)
    try:
        # want_parallel: the report below needs the live run (stats
        # buckets, sanitizer, mechanism breakdown), not just the summary.
        result = api.run(config, want_parallel=True)
    except NodeFailure as failure:
        if replication is not None:
            raise SystemExit(
                f"unmaskable failure: {failure}\n"
                f"(hint: {replicas} replicas mask up to "
                f"{(replicas - 1) // 2} *replica* crashes; an application-"
                "rank crash or one dead replica too many aborts the run "
                "-- use --ft-mode rollback with --checkpoint-interval to "
                "survive those)")
        raise SystemExit(f"unrecoverable failure: {failure}\n"
                         "(hint: --checkpoint-interval bounds the work "
                         "lost per crash; multiple crashes within one "
                         "checkpoint interval cannot be recovered)")
    run = result.parallel
    rows = [
        f"{exp.label} / {system} / {nprocs} processors ({preset} preset)",
        "",
        f"sequential time   {result.seq_time:10.2f} virtual s",
        f"parallel time     {result.time:10.2f} virtual s",
        f"speedup           {result.speedup:10.2f}",
        f"messages          {result.messages:10d}",
        f"data              {result.kbytes:10.0f} KB",
        f"link utilization  {result.link_utilization:10.2f}",
        "",
        run.stats.summary(system),
    ]
    if faults is not None:
        rel = run.stats.reliability(system)
        rows += ["", f"fault plan: loss={faults.loss} seed={faults.seed}"]
        for category in ("drop", "retransmit", "dup_suppress", "ack"):
            counter = rel.get(category)
            if counter is not None:
                rows.append(f"  {category:<16} {counter.messages:>10d} msgs "
                            f"{counter.bytes / 1024.0:>12.1f} KB")
    if run.recovery is not None:
        report = run.recovery
        rows += ["", "crash recovery:",
                 f"  failures recovered  {report.recoveries}"
                 + (f" (nodes {report.failed_nodes})"
                    if report.failed_nodes else ""),
                 f"  detection latency   {report.detection_latency * 1e3:10.2f} ms",
                 f"  lost work re-run    {report.lost_work:10.4f} virtual s",
                 f"  checkpoint restore  {report.restore_time * 1e3:10.2f} ms "
                 f"({report.restored_bytes / 1024.0:.1f} KB)",
                 f"  total overhead      {report.overhead_time:10.4f} virtual s"]
        for category, counter in run.stats.recovery().items():
            rows.append(f"  {category:<18} {counter.messages:>8d} msgs "
                        f"{counter.bytes / 1024.0:>10.1f} KB")
    if run.replication is not None:
        rep = run.replication
        rows += ["", "failure masking (SC-ABD quorum replication):",
                 f"  replica servers     {rep.replicas} "
                 f"(masks up to {rep.f_max} replica crashes)",
                 f"  masked failures     {rep.masked_failures}"
                 + (f" (nodes {rep.masked_nodes})"
                    if rep.masked_nodes else ""),
                 f"  detection latency   {rep.detection_latency * 1e3:10.2f} ms",
                 f"  quorum reads        {rep.quorum_reads:10d}",
                 f"  quorum writes       {rep.quorum_writes:10d}",
                 f"  quorum traffic      {rep.messages:10d} msgs "
                 f"{rep.bytes / 1024.0:10.1f} KB"]
        for category, counter in run.stats.replication().items():
            rows.append(f"  {category:<18} {counter.messages:>8d} msgs "
                        f"{counter.bytes / 1024.0:>10.1f} KB")
    if system == "tmk" and run.replication is None:
        # The mechanism breakdown decomposes LRC diff/twin costs, which
        # the quorum-replicated (SC) protocol does not have.
        rows += ["", render_breakdown(exp.label, decompose(run))]
    if run.sanitizer is not None:
        rows += ["", run.sanitizer.summary()]
        if race_check != "off":
            rows += ["", run.sanitizer.race_report()]
        if false_sharing:
            rows += ["", run.sanitizer.false_sharing_report()]
    return "\n".join(rows)


def cmd_verify(experiment: Optional[str], system: str = "tmk",
               nprocs: int = 3, preset: str = "tiny",
               schedules: int = 25, mode: str = "random", seed: int = 0,
               max_flips: int = 2, invariants: bool = True,
               lint: bool = False, lint_paths: str = "src/repro") -> str:
    """Explore tie-break schedules and/or run the protocol lints.

    Raises ``SystemExit`` (nonzero) when any explored schedule deadlocks,
    breaks a protocol invariant, or diverges from the reference result,
    or when the lints produce findings.
    """
    from repro.bench import harness
    sections: List[str] = []
    failed = False
    if experiment is None and not lint:
        raise SystemExit("nothing to do: give an experiment id and/or "
                         "--lint")
    if experiment is not None:
        if experiment not in harness.EXPERIMENTS:
            raise SystemExit(f"unknown experiment {experiment!r}; "
                             f"try: {', '.join(harness.EXPERIMENTS)}")
        from repro.verify import explore_app
        exp = harness.EXPERIMENTS[experiment]
        try:
            params = harness.params_for(exp, preset)
        except ValueError as exc:
            raise SystemExit(str(exc))
        report = explore_app(exp.app, system, nprocs, params, mode=mode,
                             schedules=schedules, seed=seed,
                             max_flips=max_flips, invariants=invariants)
        sections.append(report.summary())
        failed = failed or not report.ok
    if lint:
        from pathlib import Path
        from repro.analysis.protolint import lint_paths as lint_run
        paths = [Path(p.strip()) for p in lint_paths.split(",") if p.strip()]
        for path in paths:
            if not path.exists():
                raise SystemExit(f"--lint-paths: no such path: {path}")
        findings = lint_run(paths)
        if findings:
            sections.append("\n".join(f.format() for f in findings))
            sections.append(f"protocol lint: {len(findings)} finding(s)")
            failed = True
        else:
            linted = ", ".join(str(p) for p in paths)
            sections.append(f"protocol lint: clean ({linted})")
    text = "\n\n".join(sections)
    if failed:
        raise SystemExit(text)
    return text


def cmd_sweep(experiments: List[str], systems: str, nprocs: str,
              preset: str, jobs: Optional[int], no_cache: bool,
              cache_dir: Optional[str],
              json_out: Optional[str] = None,
              engine: str = "coro", kernels: str = "compiled") -> str:
    from repro.bench import sweep as sweep_mod
    system_list = tuple(s.strip() for s in systems.split(",") if s.strip())
    counts = tuple(int(v) for v in nprocs.split(","))
    try:
        configs = sweep_mod.sweep_configs(experiments, systems=system_list,
                                          nprocs=counts, preset=preset,
                                          engine=engine, kernels=kernels)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if jobs is None:
        jobs = sweep_mod.default_jobs()
    report = sweep_mod.run_sweep(configs, jobs=jobs,
                                 use_cache=not no_cache,
                                 cache_dir=cache_dir)
    text = report.render()
    if json_out is not None:
        import json as json_mod
        with open(json_out, "w", encoding="utf-8") as fh:
            json_mod.dump(report.to_json(), fh, indent=2, sort_keys=True)
        text += f"\n\nsweep report -> {json_out}"
    return text


def cmd_serve(host: str, port: int, workers: int, queue_depth: int,
              deadline_ms: float, cache_dir: Optional[str],
              chaos: bool) -> int:
    """Run the serving layer until interrupted (prints the bound URL)."""
    import asyncio

    from repro.serve import ReproServer, ServeConfig
    try:
        config = ServeConfig(host=host, port=port, workers=workers,
                             queue_depth=queue_depth,
                             default_deadline=deadline_ms / 1000.0,
                             allow_injection=chaos)
    except ValueError as exc:
        raise SystemExit(f"bad serve configuration: {exc}")

    async def _main() -> None:
        server = ReproServer(config, cache_dir=cache_dir)
        await server.start()
        print(f"serving on http://{config.host}:{server.port} "
              f"(workers={workers}, queue={queue_depth}, "
              f"cache={server.cache_dir}"
              + (", chaos injection ENABLED" if chaos else "") + ")",
              flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_figure(experiment: str, nprocs: str, preset: str) -> str:
    from repro.bench import harness
    from repro.bench.figures import render_figure
    if experiment not in harness.EXPERIMENTS:
        raise SystemExit(f"unknown experiment {experiment!r}")
    exp = harness.EXPERIMENTS[experiment]
    counts = tuple(int(v) for v in nprocs.split(","))
    tmk = harness.speedup_series(experiment, "tmk", counts, preset)
    pvm = harness.speedup_series(experiment, "pvm", counts, preset)
    return render_figure(
        f"Figure {exp.figure}: {exp.label} "
        f"({harness.size_string(exp, preset)})", counts, tmk, pvm)


def cmd_table(which: str, preset: str) -> str:
    from repro.bench import tables
    if which == "table1":
        return tables.render_table1(preset=preset)
    return tables.render_table2(preset=preset)


def cmd_trace(app: str, nprocs: int, limit: int, faults=None,
              perfetto: Optional[str] = None) -> str:
    from repro.apps import base
    from repro.sim.trace import Trace

    spec = base.get_app(app)
    params_module = sys.modules[spec.sequential.__module__]
    params_cls = next(v for k, v in vars(params_module).items()
                      if k.endswith("Params"))
    params = params_cls.tiny()
    trace = Trace(enabled=True)
    obs = None
    if perfetto is not None:
        from repro.obs import ObsConfig
        obs = ObsConfig(timeline=True)
    run = base.run_parallel(spec, "tmk", nprocs, params, trace=trace,
                            faults=faults, obs=obs)
    header = f"TreadMarks protocol trace: {app} (tiny preset, " \
             f"{nprocs} processors, first {limit} events)"
    text = header + "\n\n" + trace.format(limit=limit)
    if perfetto is not None:
        from repro.obs import write_chrome_trace
        write_chrome_trace(run.timeline, perfetto,
                           label=f"{app} tmk x{nprocs}")
        text += (f"\n\nPerfetto trace "
                 f"({len(run.timeline.events)} events) -> {perfetto}")
    return text


def cmd_profile(experiment: str, system: str, nprocs: int,
                preset: str) -> str:
    from repro.bench import harness
    from repro.obs import ObsConfig, build_profile, render_profile
    if experiment == "all":
        exp_ids = list(harness.EXPERIMENTS)
    elif experiment in harness.EXPERIMENTS:
        exp_ids = [experiment]
    else:
        raise SystemExit(f"unknown experiment {experiment!r}; "
                         f"try: all, {', '.join(harness.EXPERIMENTS)}")
    systems = ("tmk", "pvm") if system == "both" else (system,)
    obs = ObsConfig(profile=True)
    sections = []
    for exp_id in exp_ids:
        exp = harness.EXPERIMENTS[exp_id]
        for sysname in systems:
            analysis = None
            if sysname == "tmk":
                # The false-sharing tracker feeds the mechanism breakdown.
                from repro.analysis import AnalysisConfig
                analysis = AnalysisConfig(false_sharing=True)
            run = harness.run_cached(exp_id, sysname, nprocs, preset,
                                     analysis=analysis, obs=obs)
            profile = build_profile(
                run, label=f"{exp.label} ({preset}, {nprocs} procs)")
            sections.append(render_profile(profile))
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(cmd_list())
    elif args.command == "run":
        plan = fault_plan(args.loss_rate, args.fault_seed, args.fault_category,
                          crash=args.crash)
        print(cmd_run(args.experiment, args.system, args.nprocs, args.preset,
                      faults=plan, race_check=args.race_check,
                      false_sharing=args.false_sharing_report,
                      checkpoint_every=args.checkpoint_interval,
                      ft_mode=args.ft_mode, replicas=args.replicas,
                      invariants=args.invariants, engine=args.engine,
                      kernels=args.kernels))
    elif args.command == "verify":
        print(cmd_verify(args.experiment, system=args.system,
                         nprocs=args.nprocs, preset=args.preset,
                         schedules=args.schedules, mode=args.mode,
                         seed=args.seed, max_flips=args.max_flips,
                         invariants=not args.no_invariants,
                         lint=args.lint, lint_paths=args.lint_paths))
    elif args.command == "sweep":
        print(cmd_sweep(args.experiment, args.systems, args.nprocs,
                        args.preset, args.jobs, args.no_cache,
                        args.cache_dir, json_out=args.json,
                        engine=args.engine, kernels=args.kernels))
    elif args.command == "serve":
        return cmd_serve(args.host, args.port, args.workers,
                         args.queue_depth, args.deadline_ms,
                         args.cache_dir, args.chaos)
    elif args.command == "figure":
        print(cmd_figure(args.experiment, args.nprocs, args.preset))
    elif args.command in ("table1", "table2"):
        print(cmd_table(args.command, args.preset))
    elif args.command == "trace":
        plan = fault_plan(args.loss_rate, args.fault_seed, args.fault_category,
                          crash=args.crash)
        print(cmd_trace(args.app, args.nprocs, args.limit, faults=plan,
                        perfetto=args.perfetto))
    elif args.command == "profile":
        print(cmd_profile(args.experiment, args.system, args.nprocs,
                          args.preset))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
