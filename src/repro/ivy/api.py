"""The IVY runtime facade.

Exposes exactly the interface the TreadMarks applications use
(``barrier``, ``lock_acquire``/``lock_release``, ``shared_array``), so
``attach_ivy`` is a drop-in replacement for ``attach_tmk``: every
``tmk_main`` in :mod:`repro.apps` runs unmodified on sequential
consistency, which is what makes the LRC-vs-SC comparison a one-line
change (``run_parallel(..., system="ivy")``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.ivy.core import IvyCore
from repro.ivy.sync import IvyBarrier, IvyLocks
from repro.tmk.sharedmem import SharedArray, SharedHeap

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster, Processor

__all__ = ["Ivy", "IvyConfig", "IvySystem", "attach_ivy"]


@dataclass(frozen=True)
class IvyConfig:
    """Cluster-wide IVY configuration."""

    segment_bytes: int = 1 << 23


class IvySystem:
    """Cluster-global IVY state: the shared heap layout."""

    def __init__(self, cluster: "Cluster", config: IvyConfig) -> None:
        if config.segment_bytes % cluster.cost.page_size:
            raise ValueError("segment size must be a multiple of the page size")
        self.cluster = cluster
        self.config = config
        self.heap = SharedHeap(config.segment_bytes, cluster.cost.page_size)


class Ivy:
    """Per-processor IVY endpoint; interface-compatible with ``Tmk``."""

    def __init__(self, proc: "Processor", system: IvySystem) -> None:
        self.proc = proc
        self.system = system
        self.core = IvyCore(proc, system)
        self.locks = IvyLocks(proc, self.core)
        self.barriers = IvyBarrier(proc, self.core)
        self._arrays: Dict[str, SharedArray] = {}

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def nprocs(self) -> int:
        return self.proc.cluster.nprocs

    # ------------------------------------------------------------------
    def barrier(self, bid: int) -> None:
        self.barriers.barrier(bid)

    def barrier_g(self, bid: int):
        """Generator form of :meth:`barrier` (coro-backend convention)."""
        yield from self.barriers.barrier_g(bid)

    def lock_acquire(self, lock: int) -> None:
        self.locks.acquire(lock)

    def lock_acquire_g(self, lock: int):
        """Generator form of :meth:`lock_acquire`."""
        yield from self.locks.acquire_g(lock)

    def lock_release(self, lock: int) -> None:
        self.locks.release(lock)

    def lock_release_g(self, lock: int):
        """Generator form of :meth:`lock_release`."""
        yield from self.locks.release_g(lock)

    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, align: int | None = None) -> int:
        return self.system.heap.malloc(nbytes, align)

    def array_at(self, addr: int, shape: Tuple[int, ...], dtype) -> SharedArray:
        return SharedArray(self, addr, shape, np.dtype(dtype))

    def shared_array(self, name: str, shape: Tuple[int, ...], dtype,
                     align: int | None = None) -> SharedArray:
        arr = self._arrays.get(name)
        if arr is None:
            addr = self.system.heap.named(name, tuple(shape),
                                          np.dtype(dtype), align)
            arr = SharedArray(self, addr, tuple(shape), np.dtype(dtype))
            self._arrays[name] = arr
        return arr

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return self.core.read_faults + self.core.write_faults

    @property
    def lock_wait_time(self) -> float:
        return self.locks.wait_time

    @property
    def barrier_wait_time(self) -> float:
        return self.barriers.wait_time


def attach_ivy(cluster: "Cluster",
               config: Optional[IvyConfig] = None) -> List[Ivy]:
    """Create one :class:`Ivy` endpoint per processor.

    Sets ``proc.tmk`` (the attribute the applications use) so the same
    application code runs on either DSM.
    """
    system = IvySystem(cluster, config if config is not None else IvyConfig())
    endpoints = []
    for proc in cluster.procs:
        proc.tmk = Ivy(proc, system)
        endpoints.append(proc.tmk)
    return endpoints
