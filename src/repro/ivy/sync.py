"""Synchronization for the IVY runtime.

Under sequential consistency, locks and barriers are *pure*
synchronization -- they carry no write notices, no vector timestamps, no
diffs.  The message patterns mirror the TreadMarks ones (static lock
managers with forwarding, a centralized barrier) so the protocols differ
only in what the paper studies: how memory consistency is maintained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.engine import Block, YIELD
from repro.sim.network import Delivery

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Processor
    from repro.ivy.core import IvyCore

__all__ = ["IvyBarrier", "IvyLocks"]

CAT_LOCK_REQ = "ivy_lock_request"
CAT_LOCK_FWD = "ivy_lock_forward"
CAT_LOCK_GRANT = "ivy_lock_grant"
CAT_BAR_ARRIVE = "ivy_barrier_arrival"
CAT_BAR_DEPART = "ivy_barrier_departure"

_SYNC_BYTES = 32
_LOCAL_CPU = 5e-6


@dataclass
class _LockState:
    owns: bool = False
    holding: bool = False
    awaiting: bool = False
    waiter: Optional[tuple] = None


class IvyLocks:
    """Static-manager forwarding locks (no consistency piggyback)."""

    def __init__(self, proc: "Processor", core: "IvyCore",
                 nprocs: Optional[int] = None) -> None:
        self.proc = proc
        self.core = core
        self.pid = proc.pid
        #: Participant count; defaults to the whole cluster.  The SC-ABD
        #: layer passes its client count so lock managers land on
        #: application ranks, never on page-replica servers.
        self.nprocs = nprocs if nprocs is not None else proc.cluster.nprocs
        self.cost = proc.cluster.cost
        self._last_requester: Dict[int, int] = {}
        self._state: Dict[int, _LockState] = {}
        self.wait_time = 0.0
        proc.register(CAT_LOCK_REQ, self._on_request)
        proc.register(CAT_LOCK_FWD, self._on_forward)
        proc.register(CAT_LOCK_GRANT, self._on_grant)

    def _lock_state(self, lock: int) -> _LockState:
        state = self._state.get(lock)
        if state is None:
            state = _LockState(owns=lock % self.nprocs == self.pid)
            self._state[lock] = state
        return state

    def acquire(self, lock: int) -> None:
        return self.proc.drive(self.acquire_g(lock))

    def acquire_g(self, lock: int):
        """Generator form of :meth:`acquire` (coro-backend convention)."""
        proc = self.proc
        yield YIELD
        state = self._lock_state(lock)
        if state.holding:
            raise RuntimeError(f"P{self.pid}: recursive acquire of {lock}")
        if state.owns:
            state.holding = True
            proc.compute(_LOCAL_CPU)
            return
        box = proc.mailbox()
        request = (lock, self.pid, box)
        manager = lock % self.nprocs
        box.waiting_on = f"P{manager} (lock manager)"
        state.awaiting = True
        t0 = proc.now
        if manager == self.pid:
            self._route(request, at=proc.now)
        else:
            t = self.core.udp.send(self.pid, manager, CAT_LOCK_REQ, request,
                                   _SYNC_BYTES, t_ready=proc.now)
            proc.set_now(t)
        yield from box.wait_g(f"ivy lock {lock}")
        self.wait_time += proc.now - t0
        state.awaiting = False
        state.owns = True
        state.holding = True

    def release(self, lock: int) -> None:
        return self.proc.drive(self.release_g(lock))

    def release_g(self, lock: int):
        """Generator form of :meth:`release` (coro-backend convention)."""
        proc = self.proc
        yield YIELD
        state = self._lock_state(lock)
        if not state.holding:
            raise RuntimeError(f"P{self.pid}: release of unheld lock {lock}")
        state.holding = False
        proc.compute(_LOCAL_CPU)
        if state.waiter is not None:
            request, state.waiter = state.waiter, None
            state.owns = False
            self._grant(request, at=proc.now)

    # -- manager / holder handlers ---------------------------------------
    def _on_request(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._route(delivery.payload, at=delivery.arrival + service)

    def _route(self, request: tuple, at: float) -> None:
        lock, requester, box = request
        target = self._last_requester.get(lock, self.pid)
        self._last_requester[lock] = requester
        if target == self.pid:
            self._holder_receive(request, at)
        else:
            self.core.udp.send(self.pid, target, CAT_LOCK_FWD, request,
                               _SYNC_BYTES, t_ready=at)

    def _on_forward(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._holder_receive(delivery.payload, delivery.arrival + service)

    def _holder_receive(self, request: tuple, at: float) -> None:
        lock = request[0]
        state = self._lock_state(lock)
        if state.holding or state.awaiting or state.waiter is not None:
            if state.waiter is not None:
                raise AssertionError(f"P{self.pid}: two waiters on {lock}")
            state.waiter = request
        else:
            state.owns = False
            self._grant(request, at)

    def _grant(self, request: tuple, at: float) -> None:
        lock, requester, box = request
        if requester == self.pid:
            box.put(0, at)
            return
        self.core.udp.send(self.pid, requester, CAT_LOCK_GRANT, (box, 0),
                           _SYNC_BYTES, t_ready=at)

    def _on_grant(self, delivery: Delivery) -> None:
        box, _ = delivery.payload
        box.put(0, delivery.arrival + delivery.recv_cpu)


class IvyBarrier:
    """Centralized barrier, 2*(n-1) messages, no write notices."""

    def __init__(self, proc: "Processor", core: "IvyCore",
                 nprocs: Optional[int] = None) -> None:
        self.proc = proc
        self.core = core
        self.pid = proc.pid
        self.nprocs = nprocs if nprocs is not None else proc.cluster.nprocs
        self.cost = proc.cluster.cost
        self.manager = 0
        self._arrivals: Dict[int, List[Tuple[int, float]]] = {}
        self._manager_blocked: Dict[int, bool] = {}
        self._waiting = False
        self.wait_time = 0.0
        proc.register(CAT_BAR_ARRIVE, self._on_arrival)
        proc.register(CAT_BAR_DEPART, self._on_departure)

    def barrier(self, bid: int) -> None:
        return self.proc.drive(self.barrier_g(bid))

    def barrier_g(self, bid: int):
        """Generator form of :meth:`barrier` (coro-backend convention)."""
        proc = self.proc
        yield YIELD
        proc.compute(_LOCAL_CPU)
        if self.nprocs == 1:
            return
        monitor = self.core.monitor
        if monitor is not None:
            monitor.on_barrier_arrive(self.pid, bid, proc.now)
        t0 = proc.now
        if self.pid == self.manager:
            arrivals = self._arrivals.setdefault(bid, [])
            if len(arrivals) == self.nprocs - 1:
                self._release(bid, max([proc.now] +
                                       [t for _, t in arrivals]))
            else:
                self._manager_blocked[bid] = True
                yield Block(f"ivy barrier {bid}",
                            "remaining barrier arrivals")
                self._manager_blocked[bid] = False
        else:
            t = self.core.udp.send(self.pid, self.manager, CAT_BAR_ARRIVE,
                                   (bid, self.pid), _SYNC_BYTES,
                                   t_ready=proc.now)
            proc.set_now(t)
            self._waiting = True
            yield Block(f"ivy barrier {bid}",
                        f"P{self.manager} (barrier manager)")
            self._waiting = False
        self.wait_time += proc.now - t0
        if monitor is not None:
            monitor.on_barrier_depart(self.pid, bid, proc.now)

    def _on_arrival(self, delivery: Delivery) -> None:
        bid, pid = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        arrivals = self._arrivals.setdefault(bid, [])
        arrivals.append((pid, delivery.arrival + service))
        if (len(arrivals) == self.nprocs - 1
                and self._manager_blocked.get(bid)):
            t_done = self._release(bid, max(t for _, t in arrivals))
            self.proc.unblock(t_done)

    def _release(self, bid: int, t_release: float) -> float:
        arrivals = self._arrivals.pop(bid)
        t = t_release
        for pid, _ in sorted(arrivals):
            t = self.core.udp.send(self.pid, pid, CAT_BAR_DEPART, bid,
                                   _SYNC_BYTES, t_ready=t)
        return t

    def _on_departure(self, delivery: Delivery) -> None:
        if not self._waiting:
            raise AssertionError(
                f"P{self.pid}: unexpected ivy barrier departure")
        self.proc.unblock(delivery.arrival + delivery.recv_cpu)
