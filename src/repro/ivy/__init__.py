"""IVY-style sequentially-consistent DSM (Li & Hudak, 1986).

The baseline design TreadMarks improved on, included as a drop-in runtime
so the same applications run unmodified on both: the paper's opening --
"much work has been done in the past decade to improve the performance of
DSM systems" -- is exactly the distance between this protocol and lazy
release consistency, and running both makes it measurable.

Protocol summary (fixed distributed management):

* every page has one **owner** and a **copyset**; a fixed per-page
  manager (page number modulo processors) tracks both;
* a **read fault** asks the manager, which forwards to the owner; the
  owner ships the whole 4-KB page and keeps a read copy;
* a **write fault** asks the manager, which first *invalidates every
  copy*, then transfers the page and its ownership to the writer --
  single-writer semantics, hence sequential consistency;
* synchronization (locks, barriers) carries no consistency information
  at all: memory is always consistent.

The cost TreadMarks eliminates is visible immediately: two processors
alternately writing disjoint halves of one page make it *ping-pong* with
a full page flight each time (false sharing), and every write fault
pays whole-page transfers where TreadMarks ships word-granular diffs.
"""

from repro.ivy.api import Ivy, IvyConfig, attach_ivy
from repro.ivy.core import IvyCore
from repro.ivy.sync import IvyBarrier, IvyLocks

__all__ = ["Ivy", "IvyBarrier", "IvyConfig", "IvyCore", "IvyLocks",
           "attach_ivy"]
