"""The IVY page-ownership protocol core.

One :class:`IvyCore` per processor.  Pages live in one of three local
states -- INVALID, READ, WRITE -- and each page has a fixed *manager*
(page number modulo processors) that serializes requests, tracks the
owner and the copyset, and orchestrates invalidations.

All protocol work happens at runtime level (message handlers); the
faulting application thread blocks on a mailbox until its page arrives.
Write transfers always ship the full page (Li's original elides the data
on an upgrade-in-place; we keep the one case that is unconditionally
safe: the owner upgrading its own read copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

import numpy as np

from repro.sim.engine import YIELD
from repro.sim.network import Delivery, UdpChannel
from repro.tmk.pages import PageTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Processor
    from repro.ivy.api import IvySystem

__all__ = ["IvyCore"]

INVALID, READ, WRITE = 0, 1, 2

CAT_REQUEST = "ivy_request"        # faulting proc -> manager
CAT_FETCH = "ivy_fetch"            # manager -> owner
CAT_PAGE = "ivy_page"              # owner/manager -> faulting proc
CAT_INVALIDATE = "ivy_invalidate"  # manager -> copyset member
CAT_INV_ACK = "ivy_inv_ack"        # member -> manager
CAT_DONE = "ivy_done"              # faulting proc -> manager (next in queue)

_REQ_BYTES = 32
_CTL_BYTES = 16


@dataclass
class _PageManagerState:
    """Manager-side bookkeeping for one page."""

    owner: int
    copyset: Set[int]
    busy: bool = False
    queue: List[tuple] = field(default_factory=list)
    #: In-flight invalidation acks for the current write request.
    awaiting_acks: int = 0
    current: Optional[tuple] = None


class IvyCore:
    """Per-processor IVY state machine and page server."""

    def __init__(self, proc: "Processor", system: "IvySystem") -> None:
        self.proc = proc
        self.system = system
        self.pid = proc.pid
        self.nprocs = proc.cluster.nprocs
        self.cost = proc.cluster.cost
        #: Reuse the paged memory holder; the valid bit means "readable".
        self.pt = PageTable(system.config.segment_bytes, self.cost.page_size)
        #: Local access state per page (INVALID/READ/WRITE).
        self.state = np.full(self.pt.npages, READ, dtype=np.int8)
        self.udp = UdpChannel(proc.cluster.net, system="ivy")
        #: Manager-side state for the pages this processor manages.
        self.managed: Dict[int, _PageManagerState] = {}
        #: Multi-page stores go page piece by page piece (see
        #: SharedArray.write): holding many contended pages at once can
        #: livelock under single-writer semantics.
        self.prefers_piecewise_writes = True

        # Diagnostics.
        self.read_faults = 0
        self.write_faults = 0
        self.pages_sent = 0
        self.invalidations = 0
        #: Optional protocol invariant monitor (repro.verify.invariants):
        #: receives install/invalidate/demote/grant/barrier events; never
        #: charges time or messages.
        self.monitor = None

        proc.register(CAT_REQUEST, self._on_request)
        proc.register(CAT_FETCH, self._on_fetch)
        proc.register(CAT_PAGE, self._on_page)
        proc.register(CAT_INVALIDATE, self._on_invalidate)
        proc.register(CAT_INV_ACK, self._on_inv_ack)
        proc.register(CAT_DONE, self._on_done)

    # ------------------------------------------------------------------
    def manager_of(self, page: int) -> int:
        return page % self.nprocs

    def _managed(self, page: int) -> _PageManagerState:
        state = self.managed.get(page)
        if state is None:
            # Initially the manager owns the page and everyone has a
            # (zero-filled) read copy.
            state = _PageManagerState(owner=self.pid,
                                      copyset=set(range(self.nprocs)))
            self.managed[page] = state
        return state

    # ------------------------------------------------------------------
    # Application-facing access checks (same interface SharedArray uses)
    # ------------------------------------------------------------------
    def ensure_valid_range(self, start: int, nbytes: int) -> None:
        self.proc.drive(self.ensure_valid_range_g(start, nbytes))

    def ensure_writable_range(self, start: int, nbytes: int) -> None:
        self.proc.drive(self.ensure_writable_range_g(start, nbytes))

    def ensure_valid_runs(self, runs) -> None:
        self.proc.drive(self._ensure_g(runs, want_write=False))

    def ensure_writable_runs(self, runs) -> None:
        self.proc.drive(self._ensure_g(runs, want_write=True))

    def ensure_valid_range_g(self, start: int, nbytes: int):
        yield from self._ensure_g([(start, nbytes)], want_write=False)

    def ensure_writable_range_g(self, start: int, nbytes: int):
        yield from self._ensure_g([(start, nbytes)], want_write=True)

    def ensure_valid_runs_g(self, runs):
        yield from self._ensure_g(runs, want_write=False)

    def ensure_writable_runs_g(self, runs):
        yield from self._ensure_g(runs, want_write=True)

    def _ensure_g(self, runs, want_write: bool):
        """Acquire every page the access touches, atomically.

        While a fault for one page blocks, an already-acquired page of
        the same access can be stolen by another processor's write (real
        IVY re-traps on the next load/store; a range access must
        re-check).  Retry until one full pass over the access's pages
        needs no fault -- the numpy load/store then follows without a
        yield point, so nothing can steal a page in between.
        """
        floor = WRITE if want_write else READ
        pages = sorted({page for start, nbytes in runs
                        for page in self.pt.pages_for_range(start, nbytes)})
        for _ in range(1000):
            clean = True
            for page in pages:
                if self.state[page] < floor:
                    yield from self._fault_g(page, want_write=want_write)
                    clean = False
            if clean:
                return
        raise RuntimeError(
            f"P{self.pid}: IVY access over {len(pages)} pages livelocked "
            "under page contention (1000 acquisition rounds)")

    # ------------------------------------------------------------------
    # Faulting side
    # ------------------------------------------------------------------
    def _fault_g(self, page: int, want_write: bool):
        proc = self.proc
        yield YIELD
        if want_write:
            self.write_faults += 1
        else:
            self.read_faults += 1
        proc.compute(self.cost.fault_cpu)
        proc.trace("ivy_fault",
                   f"page={page} {'write' if want_write else 'read'}")
        box = proc.mailbox()
        manager = self.manager_of(page)
        box.waiting_on = f"P{manager} (page manager)"
        request = ("write" if want_write else "read", page, self.pid, box)
        if manager == self.pid:
            self._enqueue(request, at=proc.now)
        else:
            t = self.udp.send(self.pid, manager, CAT_REQUEST, request,
                              _REQ_BYTES, t_ready=proc.now)
            proc.set_now(t)
        payload = yield from box.wait_g(f"ivy page {page}")
        data, granted_write = payload
        if data is not None:
            view = self.pt.page_view(page)
            view[:] = np.frombuffer(data, dtype=np.uint8)
            proc.compute(self.cost.copy_cost(self.cost.page_size))
        self.state[page] = WRITE if granted_write else READ
        if self.monitor is not None:
            self.monitor.on_install(self.pid, page, granted_write, proc.now)
        # Tell the manager the transfer completed so it can serve the
        # next queued request for this page.
        if manager == self.pid:
            self._finish(page)
        else:
            t = self.udp.send(self.pid, manager, CAT_DONE, page,
                              _CTL_BYTES, t_ready=proc.now)
            proc.set_now(t)

    def _on_page(self, delivery: Delivery) -> None:
        box, payload = delivery.payload
        box.put(payload, delivery.arrival + delivery.recv_cpu)

    # ------------------------------------------------------------------
    # Manager side
    # ------------------------------------------------------------------
    def _on_request(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._enqueue(delivery.payload, at=delivery.arrival + service)

    def _enqueue(self, request: tuple, at: float) -> None:
        page = request[1]
        state = self._managed(page)
        state.queue.append(request)
        if not state.busy:
            self._start_next(page, at)

    def _start_next(self, page: int, at: float) -> None:
        state = self._managed(page)
        if not state.queue:
            state.busy = False
            return
        state.busy = True
        state.current = state.queue.pop(0)
        kind, _, requester, box = state.current
        if kind == "read":
            state.copyset.add(requester)
            self._transfer(page, requester, box, write=False, at=at)
            return
        # Write: invalidate every other copy first.
        targets = sorted(state.copyset - {requester})
        state.copyset = {requester}
        if targets:
            state.awaiting_acks = len(targets)
            t = at
            for member in targets:
                if member == self.pid:
                    self._local_invalidate(page)
                    state.awaiting_acks -= 1
                    continue
                t = self.udp.send(self.pid, member, CAT_INVALIDATE,
                                  page, _CTL_BYTES, t_ready=t)
            if state.awaiting_acks == 0:
                self._transfer(page, requester, box, write=True, at=t)
            return
        self._transfer(page, requester, box, write=True, at=at)

    def _local_invalidate(self, page: int) -> None:
        self.state[page] = INVALID
        self.invalidations += 1
        if self.monitor is not None:
            self.monitor.on_invalidate(self.pid, page, self.proc.now)

    def _on_invalidate(self, delivery: Delivery) -> None:
        page = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self._local_invalidate(page)
        manager = self.manager_of(page)
        t_ready = delivery.arrival + service
        t = self.udp.send(self.pid, manager, CAT_INV_ACK, page,
                          _CTL_BYTES, t_ready=t_ready)
        self.proc.charge_service(service + (t - t_ready))

    def _on_inv_ack(self, delivery: Delivery) -> None:
        page = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        state = self._managed(page)
        state.awaiting_acks -= 1
        if state.awaiting_acks == 0 and state.current is not None:
            _, _, requester, box = state.current
            self._transfer(page, requester, box, write=True,
                           at=delivery.arrival + service)

    def _transfer(self, page: int, requester: int, box, write: bool,
                  at: float) -> None:
        """Route the page (and, for writes, its ownership) to the
        requester; the manager's bookkeeping is already updated."""
        state = self._managed(page)
        owner = state.owner
        if write:
            state.owner = requester
        if self.monitor is not None:
            self.monitor.on_grant(self.pid, page,
                                  "write" if write else "read", requester,
                                  owner, frozenset(state.copyset), at)
        if owner == requester:
            # Upgrade in place: the owner's copy is current -- the manager
            # sends just the grant, no page data.
            self._deliver_page(requester, box, page, data=False,
                               write=write, at=at)
        elif owner == self.pid:
            self._serve_page(page, requester, box, write=write, at=at)
        else:
            self.udp.send(self.pid, owner, CAT_FETCH,
                          (page, requester, box, write),
                          _REQ_BYTES, t_ready=at)

    def _on_fetch(self, delivery: Delivery) -> None:
        page, requester, box, write = delivery.payload
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._serve_page(page, requester, box, write=write,
                         at=delivery.arrival + service)

    def _serve_page(self, page: int, requester: int, box, write: bool,
                    at: float) -> None:
        """Owner side: ship the page; demote or drop the local copy."""
        data = bytes(self.pt.page_view(page).tobytes())
        self.pages_sent += 1
        if write:
            self._local_invalidate(page)
        elif self.state[page] == WRITE:
            self.state[page] = READ
            if self.monitor is not None:
                self.monitor.on_demote(self.pid, page, at)
        self._deliver_page(requester, box, page, data=True,
                           write=write, at=at, payload=data)

    def _deliver_page(self, requester: int, box, page: int,
                      data: bool, write: bool, at: float,
                      payload: Optional[bytes] = None) -> None:
        """Send the page/grant from this processor to the requester."""
        body = (payload if data else None, write)
        nbytes = (self.cost.page_size if data else 0) + _CTL_BYTES
        if requester == self.pid:
            # Local upgrade at the manager/owner: no message at all.
            box.put(body, at)
            return
        t = self.udp.send(self.pid, requester, CAT_PAGE, (box, body),
                          nbytes, t_ready=at)
        self.proc.charge_service(max(0.0, t - at))

    def _on_done(self, delivery: Delivery) -> None:
        service = delivery.recv_cpu + self.cost.interrupt_cpu
        self.proc.charge_service(service)
        self._finish(delivery.payload,
                     at=delivery.arrival + service)

    def _finish(self, page: int, at: Optional[float] = None) -> None:
        state = self._managed(page)
        state.current = None
        state.busy = False
        self._start_next(page, at if at is not None else self.proc.now)