"""PVM daemon layer.

Real PVM runs a ``pvmd`` daemon on every host.  By default two user
processes on different hosts exchange messages via their local daemons
(user -> local pvmd over TCP loopback, pvmd -> pvmd over UDP, pvmd -> user
over TCP loopback).  Processes may instead establish *direct* TCP
connections to cut that overhead -- the paper uses direct connections
"because it results in better performance", and that is the default here.

The daemon-routed path is retained as a configuration (and an ablation
benchmark) to demonstrate the overhead the paper's setup avoids: two extra
message copies through the daemons plus a store-and-forward hop.

Reliability: real pvmds implement their own positive-ACK retry protocol on
the daemon-to-daemon UDP hop.  Here that control path rides the simulated
network's reliable-UDP sublayer whenever a fault plan is active, giving
exactly-once, in-order delivery between daemons (retransmission with
backoff, duplicate suppression), so the daemon route survives injected
loss just like the direct TCP route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.network import UdpChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster

__all__ = ["DaemonNetwork"]

#: Fixed CPU cost of one loopback TCP hop between a user process and its
#: pvmd (socket write + context switch to the daemon).
_LOOPBACK_CPU = 150e-6
#: Store-and-forward processing in each pvmd the message traverses.
_DAEMON_CPU = 150e-6


@dataclass
class DaemonNetwork:
    """Routing state for daemon-mediated PVM messaging.

    One instance per cluster; it owns a UDP channel used for the
    daemon-to-daemon hop (pvmd traffic is UDP in real PVM as well).  The
    store-and-forward delay is charged to the message's arrival time and the
    forwarding CPU to the destination host (where the pvmd runs).
    """

    cluster: "Cluster"

    def __post_init__(self) -> None:
        # Daemon-to-daemon traffic is accounted under the pvm system so the
        # routed configuration remains comparable with the direct one.
        self._udp = UdpChannel(self.cluster.net, system="pvm")

    def route_cost(self, nbytes: int) -> float:
        """Extra sender-side CPU for handing the message to the local pvmd.

        The loopback hop goes through the TCP stack (so it pays the same
        per-byte cost as a direct connection's send side) and the local
        daemon must re-read and re-packetize the message before the UDP hop.
        """
        cost = self.cluster.cost
        per_byte = cost.copy_byte_cpu + cost.tcp_byte_cpu
        return _LOOPBACK_CPU + _DAEMON_CPU + 2 * nbytes * per_byte

    def forward(self, src: int, dst: int, category: str, payload, nbytes: int,
                *, t_ready: float) -> float:
        """Send via the daemons: loopback in, UDP across, loopback out.

        Returns the time the sending *user process* is free.  The extra
        delivery latency (destination daemon processing plus the
        receive-side loopback hop) is charged through an inflated
        ``recv_cpu`` on the final delivery.
        """
        obs = self.cluster.obs
        if obs is not None:
            obs.instant(t_ready, src, "daemon_forward",
                        f"->P{dst} {nbytes}B")
        t = t_ready + self.route_cost(nbytes)
        self._udp.send(src, dst, category, payload, nbytes, t_ready=t)
        return t
