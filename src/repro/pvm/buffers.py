"""Typed pack/unpack buffers (the pvm_pk* / pvm_upk* interface).

With PVM, user data must be packed into a send buffer before dispatch and
unpacked from a receive buffer afterwards.  Every packing routine takes the
start of the user data, the number of items, and a stride; unpack calls must
match the corresponding pack calls in type and item count -- violations
raise :class:`PvmTypeMismatch` just as real PVM returns ``PvmNoData`` /
garbage.

Buffers may use the *raw* data format (no conversion; valid because the
paper's cluster is homogeneous and disables XDR) or the *default* format
(XDR external data representation, charged extra per-byte conversion cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DataFormat", "PvmTypeMismatch", "ReceiveBuffer", "SendBuffer", "TYPE_DTYPES"]


class PvmTypeMismatch(TypeError):
    """Unpack call does not match the corresponding pack call."""


class DataFormat(enum.Enum):
    """Encoding of a message on the wire (pvm_initsend argument)."""

    #: ``PvmDataRaw`` -- native byte order, no conversion.
    RAW = "raw"
    #: ``PvmDataDefault`` -- XDR conversion on pack and unpack.
    XDR = "xdr"


#: PVM type code -> numpy dtype.
TYPE_DTYPES = {
    "byte": np.dtype(np.uint8),
    "short": np.dtype(np.int16),
    "int": np.dtype(np.int32),
    "uint": np.dtype(np.uint32),
    "long": np.dtype(np.int64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
    "dcplx": np.dtype(np.complex128),
}


def _strided(values: Sequence | np.ndarray, count: int, stride: int,
             dtype: np.dtype) -> np.ndarray:
    """Extract ``count`` items with ``stride`` from ``values`` as ``dtype``."""
    arr = np.asarray(values)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    flat = arr.reshape(-1)
    needed = (count - 1) * stride + 1 if count > 0 else 0
    if flat.size < needed:
        raise ValueError(
            f"pack of {count} items with stride {stride} needs {needed} "
            f"elements, got {flat.size}")
    return flat[: needed: stride].astype(dtype, copy=True)


@dataclass
class _Segment:
    typecode: str
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class SendBuffer:
    """An outgoing message under construction (pvm_initsend result)."""

    def __init__(self, fmt: DataFormat = DataFormat.RAW) -> None:
        self.fmt = fmt
        self._segments: List[_Segment] = []
        self._sent = False

    # -- generic pack ---------------------------------------------------
    def pack(self, typecode: str, values, count: int | None = None,
             stride: int = 1) -> "SendBuffer":
        if self._sent:
            raise RuntimeError("buffer already dispatched; pvm_initsend again")
        dtype = TYPE_DTYPES.get(typecode)
        if dtype is None:
            raise PvmTypeMismatch(f"unknown PVM type code {typecode!r}")
        arr = np.asarray(values)
        if count is None:
            count = arr.size if stride == 1 else (arr.size + stride - 1) // stride
        self._segments.append(_Segment(typecode, _strided(arr, count, stride, dtype)))
        return self

    # -- the pvm_pk* family ----------------------------------------------
    def pkbyte(self, values, count: int | None = None, stride: int = 1):
        return self.pack("byte", values, count, stride)

    def pkshort(self, values, count: int | None = None, stride: int = 1):
        return self.pack("short", values, count, stride)

    def pkint(self, values, count: int | None = None, stride: int = 1):
        return self.pack("int", values, count, stride)

    def pkuint(self, values, count: int | None = None, stride: int = 1):
        return self.pack("uint", values, count, stride)

    def pklong(self, values, count: int | None = None, stride: int = 1):
        return self.pack("long", values, count, stride)

    def pkfloat(self, values, count: int | None = None, stride: int = 1):
        return self.pack("float", values, count, stride)

    def pkdouble(self, values, count: int | None = None, stride: int = 1):
        return self.pack("double", values, count, stride)

    def pkdcplx(self, values, count: int | None = None, stride: int = 1):
        return self.pack("dcplx", values, count, stride)

    def pkstr(self, text: str) -> "SendBuffer":
        return self.pack("byte", np.frombuffer(text.encode(), dtype=np.uint8))

    # ---------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """User data bytes in the buffer (the paper's PVM data metric)."""
        return sum(seg.nbytes for seg in self._segments)

    @property
    def nitems(self) -> int:
        return sum(seg.data.size for seg in self._segments)

    def _freeze(self) -> Tuple[Tuple[str, np.ndarray], ...]:
        """Snapshot for transmission (marks the buffer dispatched)."""
        self._sent = True
        return tuple((seg.typecode, seg.data) for seg in self._segments)


class ReceiveBuffer:
    """An arrived message being consumed by pvm_upk* calls."""

    def __init__(self, segments: Tuple[Tuple[str, np.ndarray], ...],
                 src: int, tag: int, fmt: DataFormat) -> None:
        self._segments = segments
        self._next = 0
        self.src = src
        self.tag = tag
        self.fmt = fmt

    # -- generic unpack ---------------------------------------------------
    def unpack(self, typecode: str, count: int) -> np.ndarray:
        if self._next >= len(self._segments):
            raise PvmTypeMismatch(
                f"unpack of {count} {typecode!r} past end of message")
        got_type, data = self._segments[self._next]
        if got_type != typecode:
            raise PvmTypeMismatch(
                f"unpack type {typecode!r} does not match packed {got_type!r}")
        if data.size != count:
            raise PvmTypeMismatch(
                f"unpack of {count} {typecode!r} items, message segment has "
                f"{data.size}")
        self._next += 1
        return data.copy()

    # -- the pvm_upk* family ------------------------------------------------
    def upkbyte(self, count: int) -> np.ndarray:
        return self.unpack("byte", count)

    def upkshort(self, count: int) -> np.ndarray:
        return self.unpack("short", count)

    def upkint(self, count: int) -> np.ndarray:
        return self.unpack("int", count)

    def upkuint(self, count: int) -> np.ndarray:
        return self.unpack("uint", count)

    def upklong(self, count: int) -> np.ndarray:
        return self.unpack("long", count)

    def upkfloat(self, count: int) -> np.ndarray:
        return self.unpack("float", count)

    def upkdouble(self, count: int) -> np.ndarray:
        return self.unpack("double", count)

    def upkdcplx(self, count: int) -> np.ndarray:
        return self.unpack("dcplx", count)

    def upkstr(self) -> str:
        if self._next >= len(self._segments):
            raise PvmTypeMismatch("unpack of string past end of message")
        got_type, data = self._segments[self._next]
        if got_type != "byte":
            raise PvmTypeMismatch(f"upkstr on a {got_type!r} segment")
        self._next += 1
        return bytes(data.tobytes()).decode()

    @property
    def nbytes(self) -> int:
        return sum(data.nbytes for _, data in self._segments)

    @property
    def remaining_segments(self) -> int:
        return len(self._segments) - self._next
