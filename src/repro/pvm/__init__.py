"""PVM-style message-passing library on the simulated cluster.

Mirrors the PVM 3.3 user interface the paper uses:

* typed pack/unpack buffers with stride (:mod:`repro.pvm.buffers`);
* non-blocking sends, blocking and non-blocking receives, multicast and
  broadcast (:mod:`repro.pvm.api`);
* a daemon layer with optional daemon-routed messaging; the paper's
  experiments use *direct* TCP connections between user processes, which is
  the default here (:mod:`repro.pvm.daemon`).

Accounting matches the paper: user-level messages and user data bytes.
"""

from repro.pvm.api import Pvm, PvmError, attach_pvm
from repro.pvm.buffers import PvmTypeMismatch
from repro.pvm.buffers import DataFormat, ReceiveBuffer, SendBuffer
from repro.pvm.daemon import DaemonNetwork

__all__ = [
    "DaemonNetwork",
    "DataFormat",
    "Pvm",
    "PvmError",
    "PvmTypeMismatch",
    "ReceiveBuffer",
    "SendBuffer",
    "attach_pvm",
]
