"""The PVM programming interface (pvm_send / pvm_recv and friends).

One :class:`Pvm` endpoint exists per simulated processor.  The interface
follows the paper's description of PVM 3.3:

* ``initsend`` creates a typed :class:`~repro.pvm.buffers.SendBuffer`;
* ``send`` is **non-blocking**: it dispatches the send buffer and returns
  as soon as the sender's CPU is free;
* ``recv`` is **blocking**: it waits for a matching message and returns a
  :class:`~repro.pvm.buffers.ReceiveBuffer`;
* ``nrecv`` is the non-blocking variant, returning ``None`` when no
  matching message has arrived yet;
* ``probe`` checks for a matching message without consuming it;
* ``mcast`` / ``bcast`` send one user-level message per destination (PVM 3
  multicast over direct routes degenerates to unicasts, which is what makes
  the all-to-all broadcast in Barnes-Hut saturate the ring).

Wildcards: ``src=-1`` and/or ``tag=-1`` match anything, earliest arrival
first, exactly like real PVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.obs.core import B_PROTOCOL, B_STALL_DATA, B_WIRE
from repro.pvm.buffers import DataFormat, ReceiveBuffer, SendBuffer
from repro.pvm.daemon import DaemonNetwork
from repro.sim.engine import Block, YIELD
from repro.sim.network import Delivery, TcpChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster, Processor

__all__ = ["Pvm", "PvmError", "attach_pvm"]

_CATEGORY = "pvm_msg"
#: Extra per-byte CPU for XDR encode/decode (disabled on homogeneous
#: clusters; the paper disables it).
_XDR_BYTE_CPU = 60e-9


class PvmError(RuntimeError):
    """Misuse of the PVM interface."""


@dataclass
class _Arrived:
    src: int
    tag: int
    segments: Tuple[Tuple[str, object], ...]
    fmt: DataFormat
    nbytes: int
    arrival: float
    recv_cpu: float


class Pvm:
    """Per-processor PVM endpoint (``proc.pvm``)."""

    def __init__(self, proc: "Processor", route: str = "direct",
                 daemons: Optional[DaemonNetwork] = None) -> None:
        if route not in ("direct", "daemon"):
            raise PvmError(f"unknown route {route!r}")
        if route == "daemon" and daemons is None:
            raise PvmError("daemon route requires a DaemonNetwork")
        self.proc = proc
        self.route = route
        self._daemons = daemons
        self._tcp = TcpChannel(proc.cluster.net, system="pvm")
        self._inbox: List[_Arrived] = []
        self._wait_spec: Optional[Tuple[int, int]] = None
        #: Optional protocol invariant monitor (repro.verify.invariants):
        #: receives per-arrival events (per-pair FIFO ordering checks).
        self.monitor = None
        proc.register(_CATEGORY, self._on_message)

    # ------------------------------------------------------------------
    @property
    def mytid(self) -> int:
        """This process's task id (processor number)."""
        return self.proc.pid

    @property
    def nprocs(self) -> int:
        return self.proc.cluster.nprocs

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def initsend(self, fmt: DataFormat = DataFormat.RAW) -> SendBuffer:
        """Start a new send buffer (pvm_initsend)."""
        self.proc.compute(self.proc.cluster.cost.initsend_cpu)
        return SendBuffer(fmt)

    def send(self, dest: int, tag: int, buf: SendBuffer) -> None:
        """Dispatch ``buf`` to ``dest`` (non-blocking, pvm_send)."""
        return self.proc.drive(self.send_g(dest, tag, buf))

    def send_g(self, dest: int, tag: int, buf: SendBuffer):
        """Generator form of :meth:`send` (coro-backend convention)."""
        yield from self._send_frozen_g(dest, tag, buf._freeze(), buf.fmt,
                                       buf.nbytes, buf.nitems)

    def mcast(self, dests: Sequence[int], tag: int, buf: SendBuffer) -> None:
        """Send to several destinations (pvm_mcast): one message each."""
        return self.proc.drive(self.mcast_g(dests, tag, buf))

    def mcast_g(self, dests: Sequence[int], tag: int, buf: SendBuffer):
        """Generator form of :meth:`mcast`."""
        segments = buf._freeze()
        nbytes, nitems = buf.nbytes, buf.nitems
        for dest in dests:
            yield from self._send_frozen_g(dest, tag, segments, buf.fmt,
                                           nbytes, nitems)

    def bcast(self, tag: int, buf: SendBuffer) -> None:
        """Send to every *other* processor."""
        self.mcast([p for p in range(self.nprocs) if p != self.mytid], tag, buf)

    def bcast_g(self, tag: int, buf: SendBuffer):
        """Generator form of :meth:`bcast`."""
        yield from self.mcast_g(
            [p for p in range(self.nprocs) if p != self.mytid], tag, buf)

    def _send_frozen_g(self, dest: int, tag: int, segments, fmt: DataFormat,
                       nbytes: int, nitems: int):
        if not (0 <= dest < self.nprocs):
            raise PvmError(f"bad destination tid {dest}")
        if dest == self.mytid:
            raise PvmError("PVM send to self is not used by these programs")
        proc = self.proc
        cost = proc.cluster.cost
        yield YIELD
        obs = proc.obs
        # Packing cost: one copy of the user data plus per-item overhead,
        # tripled per byte if XDR conversion is enabled.
        pack_cpu = cost.copy_cost(nbytes) + nitems * cost.pack_item_cpu
        if fmt is DataFormat.XDR:
            pack_cpu += nbytes * _XDR_BYTE_CPU
        if obs is not None:
            obs.begin(proc.now, proc.pid, "pack", B_PROTOCOL,
                      f"{nbytes}B tag={tag}")
        proc.compute(pack_cpu)
        if obs is not None:
            obs.end(proc.now, proc.pid)
            obs.begin(proc.now, proc.pid, "send", B_WIRE,
                      f"->P{dest} tag={tag} {nbytes}B")
        payload = (segments, fmt)
        if self.route == "direct":
            t_free = self._tcp.send(proc.pid, dest, _CATEGORY,
                                    (tag, payload), nbytes, t_ready=proc.now)
        else:
            assert self._daemons is not None
            t_free = self._daemons.forward(proc.pid, dest, _CATEGORY,
                                           (tag, payload), nbytes,
                                           t_ready=proc.now)
        proc.set_now(t_free)
        if obs is not None:
            obs.end(proc.now, proc.pid)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_message(self, delivery: Delivery) -> None:
        tag, (segments, fmt) = delivery.payload
        extra = 0.0
        if self.route == "daemon":
            # Destination-daemon processing plus the receive-side loopback
            # hop through the local pvmd (TCP stack per-byte costs again).
            cost = self.proc.cluster.cost
            per_byte = cost.copy_byte_cpu + cost.tcp_byte_cpu
            extra = 300e-6 + 2 * delivery.user_bytes * per_byte
        msg = _Arrived(src=delivery.src, tag=tag, segments=segments, fmt=fmt,
                       nbytes=delivery.user_bytes, arrival=delivery.arrival,
                       recv_cpu=delivery.recv_cpu + extra)
        if self.monitor is not None:
            self.monitor.on_message(delivery.src, self.proc.pid, tag,
                                    delivery.arrival)
        self._inbox.append(msg)
        if self._wait_spec is not None and self._matches(msg, *self._wait_spec):
            self._wait_spec = None
            self.proc.unblock(delivery.arrival)

    @staticmethod
    def _matches(msg: _Arrived, src: int, tag: int) -> bool:
        return (src == -1 or msg.src == src) and (tag == -1 or msg.tag == tag)

    def _take(self, src: int, tag: int) -> Optional[_Arrived]:
        for i, msg in enumerate(self._inbox):
            if self._matches(msg, src, tag):
                return self._inbox.pop(i)
        return None

    def recv(self, src: int = -1, tag: int = -1) -> ReceiveBuffer:
        """Blocking receive (pvm_recv); wildcards with ``-1``."""
        return self.proc.drive(self.recv_g(src, tag))

    def recv_g(self, src: int = -1, tag: int = -1):
        """Generator form of :meth:`recv` (coro-backend convention)."""
        proc = self.proc
        yield YIELD
        obs = proc.obs
        if obs is not None:
            # PVM's sync-vs-data ambiguity in one span: whether this wait
            # is for a result or a go-ahead, it all lands in stall_data.
            obs.begin(proc.now, proc.pid, "pvm_recv", B_STALL_DATA,
                      f"src={src} tag={tag}")
        msg = self._take(src, tag)
        while msg is None:
            self._wait_spec = (src, tag)
            yield Block(f"pvm_recv(src={src}, tag={tag})",
                        ("any sender" if src == -1 else f"P{src}"))
            msg = self._take(src, tag)
        buf = self._consume(msg)
        if obs is not None:
            obs.end(proc.now, proc.pid)
        return buf

    def nrecv(self, src: int = -1, tag: int = -1) -> Optional[ReceiveBuffer]:
        """Non-blocking receive (pvm_nrecv): ``None`` if nothing matched."""
        return self.proc.drive(self.nrecv_g(src, tag))

    def nrecv_g(self, src: int = -1, tag: int = -1):
        """Generator form of :meth:`nrecv`."""
        proc = self.proc
        yield YIELD
        msg = self._take(src, tag)
        if msg is None:
            return None
        return self._consume(msg)

    def probe(self, src: int = -1, tag: int = -1) -> bool:
        """True if a matching message has arrived (pvm_probe)."""
        return self.proc.drive(self.probe_g(src, tag))

    def probe_g(self, src: int = -1, tag: int = -1):
        """Generator form of :meth:`probe`."""
        yield YIELD
        return any(self._matches(m, src, tag) for m in self._inbox)

    def _consume(self, msg: _Arrived) -> ReceiveBuffer:
        proc = self.proc
        if msg.arrival > proc.now:
            proc.set_now(msg.arrival)
        unpack_cpu = msg.recv_cpu
        if msg.fmt is DataFormat.XDR:
            unpack_cpu += msg.nbytes * _XDR_BYTE_CPU
        obs = proc.obs
        if obs is not None:
            obs.begin(proc.now, proc.pid, "unpack", B_PROTOCOL,
                      f"src=P{msg.src} tag={msg.tag} {msg.nbytes}B")
        proc.compute(unpack_cpu)
        if obs is not None:
            obs.end(proc.now, proc.pid)
        return ReceiveBuffer(msg.segments, msg.src, msg.tag, msg.fmt)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Messages sitting in the inbox (diagnostics)."""
        return len(self._inbox)

    def inflight_bytes(self) -> int:
        """User bytes of received-but-unconsumed messages.

        A coordinated PVM checkpoint must log these along with the
        process state -- they are in flight on the cut.
        """
        return sum(m.nbytes for m in self._inbox)


def attach_pvm(cluster: "Cluster", route: str = "direct") -> List[Pvm]:
    """Create one :class:`Pvm` endpoint per processor (sets ``proc.pvm``)."""
    daemons = DaemonNetwork(cluster) if route == "daemon" else None
    endpoints = []
    for proc in cluster.procs:
        proc.pvm = Pvm(proc, route=route, daemons=daemons)
        endpoints.append(proc.pvm)
    if cluster.recovery is not None:
        # PVM has no global barrier to align on; checkpoints are driven
        # by a coordinated timer (no-op when the interval is 0).
        cluster.recovery.start_coordinated_checkpoints()
    return endpoints
