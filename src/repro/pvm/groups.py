"""PVM 3.3 group operations (pvm_joingroup and friends).

Real PVM manages *dynamic process groups* through a group server: tasks
join and leave named groups, and group-wide operations -- barrier,
broadcast, reduce, gather -- address members by (group, instance) rather
than task id.  The paper's nine applications manage without groups (the
authors hand-roll their chains and broadcasts), but the API is part of
the PVM 3.3 surface this library reproduces, and the group server's
centralization is itself instructive: every group barrier costs
2*(members-1) messages through one server, just like TreadMarks'
centralized barrier.

The group server lives on task 0, mirroring PVM's single ``pvmgs``
process.  All group traffic is ordinary PVM-accounted messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from repro.sim.engine import Block, YIELD
from repro.sim.network import Delivery, TcpChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster, Processor

__all__ = ["GroupError", "PvmGroups", "attach_groups"]

_CAT_REQUEST = "pvm_grp_request"
_CAT_REPLY = "pvm_grp_reply"
_CAT_DATA = "pvm_grp_data"

#: Fixed size of a group-server control message.
_CONTROL_BYTES = 48

_REDUCERS: Dict[str, Callable] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
}


class GroupError(RuntimeError):
    """Misuse of the group interface."""


@dataclass
class _GroupState:
    """Server-side state of one named group."""

    members: List[int] = field(default_factory=list)
    #: Barrier bookkeeping: waiting (pid, mailbox-reply address) pairs.
    barrier_waiters: List[tuple] = field(default_factory=list)
    barrier_target: int = 0


class PvmGroups:
    """Per-processor group endpoint (``proc.pvm.groups``)."""

    def __init__(self, proc: "Processor") -> None:
        self.proc = proc
        self._tcp = TcpChannel(proc.cluster.net, system="pvm")
        self._server_state: Dict[str, _GroupState] = {}
        #: Client-side cache: group -> my instance number.
        self._instances: Dict[str, int] = {}
        proc.register(_CAT_REQUEST, self._serve)
        proc.register(_CAT_REPLY, self._on_reply)
        proc.register(_CAT_DATA, self._on_data)
        self._data_queue: List[Delivery] = []
        self._data_waiting = False

    # ------------------------------------------------------------------
    # Client plumbing: synchronous request to the group server (task 0)
    # ------------------------------------------------------------------
    @property
    def _server(self) -> int:
        return 0

    def _rpc(self, op: str, *args):
        return self.proc.drive(self._rpc_g(op, *args))

    def _rpc_g(self, op: str, *args):
        proc = self.proc
        yield YIELD
        box = proc.mailbox()
        if proc.pid == self._server:
            # Local call into the server, charged a small CPU cost.
            proc.compute(20e-6)
            reply = self._handle(op, proc.pid, *args)
            if reply is _DEFERRED:
                reply = yield from box.wait_g(f"deferred {op}")
            return reply
        t = self._tcp.send(proc.pid, self._server, _CAT_REQUEST,
                           (box, op, proc.pid, args), _CONTROL_BYTES,
                           t_ready=proc.now)
        proc.set_now(t)
        result = yield from box.wait_g(f"group server reply to {op}")
        return result

    def _serve(self, delivery: Delivery) -> None:
        box, op, pid, args = delivery.payload
        cost = self.proc.cluster.cost
        service = delivery.recv_cpu + cost.interrupt_cpu
        t_ready = delivery.arrival + service
        reply = self._handle(op, pid, *args, reply_to=(box, t_ready))
        if reply is _DEFERRED:
            self.proc.charge_service(service)
            return
        t_free = self._tcp.send(self.proc.pid, pid, _CAT_REPLY,
                                (box, reply), _CONTROL_BYTES, t_ready=t_ready)
        self.proc.charge_service(service + (t_free - t_ready))

    def _on_reply(self, delivery: Delivery) -> None:
        box, reply = delivery.payload
        box.put(reply, delivery.arrival + delivery.recv_cpu)

    # ------------------------------------------------------------------
    # Server logic
    # ------------------------------------------------------------------
    def _handle(self, op: str, pid: int, *args, reply_to=None):
        groups = self._server_state
        if op == "join":
            (name,) = args
            state = groups.setdefault(name, _GroupState())
            if pid in state.members:
                return state.members.index(pid)
            state.members.append(pid)
            return len(state.members) - 1
        if op == "leave":
            (name,) = args
            state = groups.get(name)
            if state is None or pid not in state.members:
                return -1
            state.members.remove(pid)
            return 0
        if op == "size":
            (name,) = args
            state = groups.get(name)
            return len(state.members) if state else 0
        if op == "members":
            (name,) = args
            state = groups.get(name)
            return tuple(state.members) if state else ()
        if op == "barrier":
            name, count = args
            state = groups.get(name)
            if state is None or pid not in state.members:
                raise GroupError(f"barrier by non-member {pid} of {name!r}")
            state.barrier_waiters.append((pid, reply_to))
            state.barrier_target = count
            if len(state.barrier_waiters) >= count:
                self._release_barrier(name, state)
                return _DEFERRED if reply_to else 0
            return _DEFERRED
        raise GroupError(f"unknown group op {op!r}")

    def _release_barrier(self, name: str, state: _GroupState) -> None:
        waiters, state.barrier_waiters = state.barrier_waiters, []
        t = max((rt[1] for _, rt in waiters if rt is not None), default=0.0)
        for pid, reply_to in waiters:
            if reply_to is None:
                # The server's own processor: woken via its local mailbox.
                continue
            box, _ = reply_to
            if pid == self.proc.pid:
                box.put(0, t)
                continue
            t = self._tcp.send(self.proc.pid, pid, _CAT_REPLY, (box, 0),
                               _CONTROL_BYTES, t_ready=t)

    # ------------------------------------------------------------------
    # Public API (the pvm_* group calls)
    # ------------------------------------------------------------------
    def joingroup(self, name: str) -> int:
        """Join ``name``; returns this task's instance number."""
        return self.proc.drive(self.joingroup_g(name))

    def joingroup_g(self, name: str):
        """Generator form of :meth:`joingroup` (coro-backend convention)."""
        inst = yield from self._rpc_g("join", name)
        self._instances[name] = inst
        return inst

    def lvgroup(self, name: str) -> None:
        return self.proc.drive(self.lvgroup_g(name))

    def lvgroup_g(self, name: str):
        """Generator form of :meth:`lvgroup`."""
        yield from self._rpc_g("leave", name)
        self._instances.pop(name, None)

    def gsize(self, name: str) -> int:
        return self.proc.drive(self.gsize_g(name))

    def gsize_g(self, name: str):
        """Generator form of :meth:`gsize`."""
        size = yield from self._rpc_g("size", name)
        return size

    def getinst(self, name: str) -> int:
        if name not in self._instances:
            raise GroupError(f"not a member of {name!r}")
        return self._instances[name]

    def members(self, name: str) -> tuple:
        return self.proc.drive(self.members_g(name))

    def members_g(self, name: str):
        """Generator form of :meth:`members`."""
        out = yield from self._rpc_g("members", name)
        return out

    def barrier(self, name: str, count: int) -> None:
        """Block until ``count`` members of ``name`` have called barrier."""
        return self.proc.drive(self.barrier_g(name, count))

    def barrier_g(self, name: str, count: int):
        """Generator form of :meth:`barrier` (coro-backend convention)."""
        if name not in self._instances:
            raise GroupError(f"barrier on {name!r} before joingroup")
        proc = self.proc
        yield YIELD
        box = proc.mailbox()
        if proc.pid == self._server:
            proc.compute(20e-6)
            result = self._handle("barrier", proc.pid, name, count,
                                  reply_to=(box, proc.now))
            if result is _DEFERRED:
                yield from box.wait_g(f"group barrier {name!r}")
            return
        t = self._tcp.send(proc.pid, self._server, _CAT_REQUEST,
                           (box, "barrier", proc.pid, (name, count)),
                           _CONTROL_BYTES, t_ready=proc.now)
        proc.set_now(t)
        yield from box.wait_g(f"group barrier {name!r}")

    # -- data-plane collectives ------------------------------------------
    def _send_data_g(self, dst: int, payload, nbytes: int):
        proc = self.proc
        yield YIELD
        t = self._tcp.send(proc.pid, dst, _CAT_DATA, payload, nbytes,
                           t_ready=proc.now)
        proc.set_now(t)

    def _on_data(self, delivery: Delivery) -> None:
        self._data_queue.append(delivery)
        if self._data_waiting:
            self._data_waiting = False
            self.proc.unblock(delivery.arrival + delivery.recv_cpu)

    def _recv_data_g(self):
        proc = self.proc
        yield YIELD
        while not self._data_queue:
            self._data_waiting = True
            yield Block("group data", None)
        delivery = self._data_queue.pop(0)
        if delivery.arrival > proc.now:
            proc.set_now(delivery.arrival)
        proc.compute(delivery.recv_cpu)
        return delivery.payload

    def reduce(self, name: str, values, op: str = "sum",
               root_instance: int = 0) -> Optional[np.ndarray]:
        """pvm_reduce: combine members' arrays at the root instance.

        Returns the combined array at the root, ``None`` elsewhere.
        """
        return self.proc.drive(self.reduce_g(name, values, op, root_instance))

    def reduce_g(self, name: str, values, op: str = "sum",
                 root_instance: int = 0):
        """Generator form of :meth:`reduce` (coro-backend convention)."""
        if op not in _REDUCERS:
            raise GroupError(f"unknown reduction {op!r}")
        members = yield from self.members_g(name)
        root = members[root_instance]
        values = np.asarray(values)
        if self.proc.pid == root:
            out = values.copy()
            for _ in range(len(members) - 1):
                _, arr = yield from self._recv_data_g()
                out = _REDUCERS[op](out, arr)
            return out
        yield from self._send_data_g(root, (self.proc.pid, values.copy()),
                                     values.nbytes)
        return None

    def gather(self, name: str, values,
               root_instance: int = 0) -> Optional[List[np.ndarray]]:
        """pvm_gather: concatenate members' arrays at the root, ordered
        by instance number."""
        return self.proc.drive(self.gather_g(name, values, root_instance))

    def gather_g(self, name: str, values, root_instance: int = 0):
        """Generator form of :meth:`gather`."""
        members = yield from self.members_g(name)
        root = members[root_instance]
        values = np.asarray(values)
        if self.proc.pid == root:
            parts = {self.proc.pid: values.copy()}
            for _ in range(len(members) - 1):
                pid, arr = yield from self._recv_data_g()
                parts[pid] = arr
            return [parts[pid] for pid in members]
        yield from self._send_data_g(root, (self.proc.pid, values.copy()),
                                     values.nbytes)
        return None

    def bcast(self, name: str, values) -> np.ndarray:
        """pvm_bcast from this member to the whole group; every member
        (including the sender) returns the array."""
        return self.proc.drive(self.bcast_g(name, values))

    def bcast_g(self, name: str, values):
        """Generator form of :meth:`bcast`."""
        members = yield from self.members_g(name)
        values = np.asarray(values)
        for pid in members:
            if pid != self.proc.pid:
                yield from self._send_data_g(
                    pid, (self.proc.pid, values.copy()), values.nbytes)
        return values.copy()

    def recv_bcast(self) -> np.ndarray:
        return self.proc.drive(self.recv_bcast_g())

    def recv_bcast_g(self):
        """Generator form of :meth:`recv_bcast`."""
        _, arr = yield from self._recv_data_g()
        return arr


class _Deferred:
    """Sentinel: the server will answer later (barrier release)."""


_DEFERRED = _Deferred()


def attach_groups(cluster: "Cluster") -> List[PvmGroups]:
    """Create one group endpoint per processor (sets ``proc.pvm.groups``
    when a Pvm endpoint exists, else ``proc.groups``)."""
    endpoints = []
    for proc in cluster.procs:
        groups = PvmGroups(proc)
        if proc.pvm is not None:
            proc.pvm.groups = groups
        proc.groups = groups
        endpoints.append(groups)
    return endpoints
