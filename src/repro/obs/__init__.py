"""Observability layer: span timelines, time attribution, trace export.

The paper's analysis goes beyond the speedup curves: it explains *why*
TreadMarks loses time to PVM through four mechanisms (separation of
synchronization and data transfer, extra diff-request messages, false
sharing, diff accumulation).  This package turns the simulator's flat
message counts into the same causal story:

* :mod:`repro.obs.timeline` -- nested spans (``page_fault`` ->
  ``diff_request`` -> ``wire`` -> ``diff_apply``, ...), zero overhead
  when disabled, with an optional ring-buffer cap;
* :mod:`repro.obs.profile` -- exclusive per-processor time buckets
  (compute, wire, protocol, stall-on-sync, stall-on-data, recovery)
  that sum to each processor's measured time, plus the attribution of
  TreadMarks stall time to the paper's four mechanisms;
* :mod:`repro.obs.perfetto` -- Chrome/Perfetto ``trace.json`` export
  and a trace-event schema validator;
* :mod:`repro.obs.core` -- the :class:`Obs` facade the runtime layers
  call and the :class:`ObsConfig` knob that enables it.
"""

from repro.obs.core import (BUCKETS, B_COMPUTE, B_PROTOCOL, B_RECOVERY,
                            B_STALL_DATA, B_STALL_SYNC, B_WIRE, Obs,
                            ObsConfig)
from repro.obs.perfetto import (to_chrome_trace, validate_chrome_trace,
                                write_chrome_trace)
from repro.obs.profile import (MechanismAttribution, ProcessorProfile,
                               RunProfile, TimeProfiler, build_profile,
                               render_profile)
from repro.obs.timeline import Timeline, TimelineEvent

__all__ = [
    "BUCKETS",
    "B_COMPUTE",
    "B_PROTOCOL",
    "B_RECOVERY",
    "B_STALL_DATA",
    "B_STALL_SYNC",
    "B_WIRE",
    "MechanismAttribution",
    "Obs",
    "ObsConfig",
    "ProcessorProfile",
    "RunProfile",
    "TimeProfiler",
    "Timeline",
    "TimelineEvent",
    "build_profile",
    "render_profile",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
