"""Span-based event timeline.

The flat :class:`repro.sim.trace.Trace` answers "what happened"; the
:class:`Timeline` answers "when, for how long, and inside what".  It
records four phases, mirroring the Chrome trace-event model so export
is a straight mapping:

* ``B`` / ``E`` -- begin/end of a nested span on one processor's track
  (``page_fault`` -> ``diff_request`` -> ``wire`` -> ``diff_apply``,
  ``lock_acquire``, ``barrier``, ``pvm_recv``, ...);
* ``X`` -- a *complete* span whose duration is known at record time
  (wire occupancy, handler service windows);
* ``I`` -- an instant event (``forward_hop``, ``thread_done``, ...).

Recording is append-only and host-side: the timeline never charges
virtual time or messages, so a run with spans enabled is accounting-
identical to one without.  An optional ring-buffer ``cap`` bounds
memory on long runs: the oldest events are discarded and counted in
:attr:`Timeline.dropped_events`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Timeline", "TimelineEvent"]


@dataclass(frozen=True)
class TimelineEvent:
    """One recorded phase transition.

    ``dur`` is meaningful only for ``X`` (complete) events; ``pid`` is
    -1 for events with no owning processor (network-level events).
    """

    phase: str  # "B", "E", "X", or "I"
    time: float
    pid: int
    kind: str
    detail: str = ""
    dur: float = 0.0

    def __str__(self) -> str:
        extra = f" dur={self.dur * 1e6:.1f}us" if self.phase == "X" else ""
        return (f"[{self.time * 1e3:10.3f} ms] P{self.pid} {self.phase} "
                f"{self.kind:<14}{extra} {self.detail}")


@dataclass
class Timeline:
    """Ordered span/instant event log for one simulated run."""

    enabled: bool = True
    #: Ring-buffer cap: keep at most this many events, dropping the
    #: oldest (``None`` = unbounded).
    cap: Optional[int] = None
    events: List[TimelineEvent] = field(default_factory=list)
    #: Events discarded because of :attr:`cap`.
    dropped_events: int = 0

    def _append(self, event: TimelineEvent) -> None:
        if self.cap is not None and len(self.events) >= self.cap:
            overflow = len(self.events) - self.cap + 1
            del self.events[:overflow]
            self.dropped_events += overflow
        self.events.append(event)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, time: float, pid: int, kind: str, detail: str = "") -> None:
        if self.enabled:
            self._append(TimelineEvent("B", time, pid, kind, detail))

    def end(self, time: float, pid: int, kind: str = "", detail: str = "") -> None:
        if self.enabled:
            self._append(TimelineEvent("E", time, pid, kind, detail))

    def complete(self, time: float, dur: float, pid: int, kind: str,
                 detail: str = "") -> None:
        if self.enabled:
            self._append(TimelineEvent("X", time, pid, kind, detail, dur))

    def instant(self, time: float, pid: int, kind: str, detail: str = "") -> None:
        if self.enabled:
            self._append(TimelineEvent("I", time, pid, kind, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[TimelineEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def spans(self, pid: Optional[int] = None) -> List[Tuple[TimelineEvent,
                                                             TimelineEvent]]:
        """Matched (begin, end) pairs, innermost-first per processor."""
        stacks: Dict[int, List[TimelineEvent]] = {}
        out: List[Tuple[TimelineEvent, TimelineEvent]] = []
        for event in self.events:
            if pid is not None and event.pid != pid:
                continue
            if event.phase == "B":
                stacks.setdefault(event.pid, []).append(event)
            elif event.phase == "E":
                stack = stacks.get(event.pid)
                if stack:
                    out.append((stack.pop(), event))
        return out

    def kind_counts(self) -> Dict[str, int]:
        """``kind -> number of events`` (begins and completes and
        instants count; ends do not, so a span counts once)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.phase != "E":
                out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def digest(self) -> Dict[str, int]:
        """Compact fingerprint used by the golden-trace tests."""
        out = dict(sorted(self.kind_counts().items()))
        out["__events__"] = len(self.events) + self.dropped_events
        out["__dropped__"] = self.dropped_events
        return out

    def format(self, limit: Optional[int] = None) -> str:
        events: Iterable[TimelineEvent] = (
            self.events if limit is None else self.events[:limit])
        return "\n".join(str(e) for e in events)
