"""Time-attribution profiler: where did the virtual time go?

Every virtual microsecond a processor's clock advances is charged to
exactly one *exclusive bucket*, so per-processor buckets sum to that
processor's measured time by construction:

* explicit advances -- :meth:`Processor.compute` and forward clock
  jumps (``set_now``) charge the bucket of the innermost open span
  (``compute`` when no span is open);
* interrupt-style service charges (``charge_service``) always charge
  ``protocol``: handlers run in scheduler context and may fire while
  the victim's application thread sits mid-span, so the span stack
  must not see them;
* block/wake jumps inside the engine advance the clock without any
  hook firing.  They surface as a *residual* -- clock minus accounted
  time -- settled into the enclosing span's bucket whenever a span
  opens or closes (a stall is exactly the wait inside ``lock_acquire``,
  ``barrier``, ``page_fault``, or ``pvm_recv`` spans).

On top of the buckets, the profiler accumulates the per-mechanism
counters the paper's causal analysis needs (section 5.2 of Lu et al.):
diff-request round-trip overhead and diff-accumulation overlap bytes.
:func:`build_profile` combines them with the false-sharing byte
attribution from :mod:`repro.analysis.false_sharing` and charges the
remaining data stall to the separation of synchronization and data
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "MechanismAttribution",
    "ProcessorProfile",
    "RunProfile",
    "TimeProfiler",
    "build_profile",
    "render_profile",
]

# Duplicated from repro.obs.core to avoid a circular import (core
# imports this module); core re-exports these as the public names.
_B_COMPUTE = "compute"
_B_PROTOCOL = "protocol"
_BUCKETS = ("compute", "wire", "protocol", "stall_sync", "stall_data",
            "recovery", "replication")

_MECH_KEYS = ("request_time", "accum_time", "diff_requests", "accum_bytes")


class TimeProfiler:
    """Per-processor exclusive-bucket accounting (see module docstring).

    The invariant maintained across every hook: ``accounted[pid]``
    equals the sum of all bucket charges for ``pid``, and is re-pinned
    to the processor's clock at every span boundary, so the uncharged
    gap (block/wake jumps) always lands in the bucket of the span it
    happened inside.
    """

    def __init__(self, nprocs: int, cost: Any) -> None:
        self.nprocs = nprocs
        self.cost = cost
        self.buckets: List[Dict[str, float]] = [
            {b: 0.0 for b in _BUCKETS} for _ in range(nprocs)]
        self.accounted: List[float] = [0.0] * nprocs
        #: Innermost-last stack of open-span buckets, per processor.
        self.stacks: List[List[str]] = [[] for _ in range(nprocs)]
        self.mech: List[Dict[str, float]] = [
            {k: 0.0 for k in _MECH_KEYS} for _ in range(nprocs)]
        #: Snapshots taken at the opening of the measured window.
        self.baseline_clock: List[float] = [0.0] * nprocs
        self.baseline_buckets: List[Dict[str, float]] = [
            {b: 0.0 for b in _BUCKETS} for _ in range(nprocs)]
        self.baseline_mech: List[Dict[str, float]] = [
            {k: 0.0 for k in _MECH_KEYS} for _ in range(nprocs)]
        #: Run-level measured-window start (the marking processor's clock).
        self.mark_time = 0.0
        #: Final clocks, recorded by :meth:`finalize`.
        self.finish: List[float] = [0.0] * nprocs
        self.finalized = False

    # ------------------------------------------------------------------
    # Accounting primitives
    # ------------------------------------------------------------------
    def _context(self, pid: int) -> str:
        stack = self.stacks[pid]
        return stack[-1] if stack else _B_COMPUTE

    def _settle(self, pid: int, now: float) -> None:
        """Charge the uncharged clock gap (block/wake jumps) to the
        current context and re-pin ``accounted`` to the clock exactly,
        absorbing float drift from incremental adds."""
        residual = now - self.accounted[pid]
        if residual:
            self.buckets[pid][self._context(pid)] += residual
        self.accounted[pid] = now

    def push(self, pid: int, kind: str, bucket: str, now: float) -> None:
        self._settle(pid, now)
        self.stacks[pid].append(bucket)

    def pop(self, pid: int, now: float) -> None:
        self._settle(pid, now)
        stack = self.stacks[pid]
        if stack:
            stack.pop()

    def on_advance(self, pid: int, dt: float) -> None:
        """Explicit clock advance from the owning thread (compute or a
        forward ``set_now`` jump): charge the innermost span's bucket.

        The hottest hook (once per compute() call), hence the inlined
        stack lookup."""
        stack = self.stacks[pid]
        self.buckets[pid][stack[-1] if stack else _B_COMPUTE] += dt
        self.accounted[pid] += dt

    def on_service(self, pid: int, dt: float) -> None:
        """Interrupt-style charge (handler/reliability context): always
        protocol time, never the span stack -- the victim's app thread
        may be mid-span in an unrelated stall."""
        self.buckets[pid][_B_PROTOCOL] += dt
        self.accounted[pid] += dt

    # ------------------------------------------------------------------
    # Mechanism counters (TreadMarks consistency layer)
    # ------------------------------------------------------------------
    def note_diff_request(self, pid: int, request_bytes: int) -> None:
        """One diff-request message sent during a page fault: the
        round-trip overhead the paper charges to access misses under
        an invalidate protocol."""
        cost = self.cost
        overhead = (cost.udp_send_cpu + cost.copy_cost(request_bytes)
                    + cost.wire_time(request_bytes + cost.udp_header_bytes)
                    + cost.wire_latency + cost.interrupt_cpu)
        mech = self.mech[pid]
        mech["request_time"] += overhead
        mech["diff_requests"] += 1

    def note_fetch_round(self, pid: int, total_bytes: int,
                         union_bytes: int) -> None:
        """One fault's diff fetch: ``total_bytes`` of diff data arrived
        to reconstruct ``union_bytes`` of distinct page bytes.  The
        overlap is diff accumulation -- the same migratory bytes shipped
        once per intervening interval."""
        overlap = total_bytes - union_bytes
        if overlap <= 0:
            return
        cost = self.cost
        per_byte = (1.0 / cost.bandwidth + cost.diff_apply_byte_cpu
                    + cost.copy_byte_cpu)
        mech = self.mech[pid]
        mech["accum_time"] += overlap * per_byte
        mech["accum_bytes"] += overlap

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def mark(self, clocks: Sequence[float], now: float = 0.0) -> None:
        """Open the measured window: settle and snapshot every pid.

        ``now`` is the run-level window start (the marking processor's
        clock); per-pid baselines are each processor's own clock."""
        self.mark_time = now
        for pid, clock in enumerate(clocks):
            self._settle(pid, clock)
            self.baseline_clock[pid] = clock
            self.baseline_buckets[pid] = dict(self.buckets[pid])
            self.baseline_mech[pid] = dict(self.mech[pid])

    def finalize(self, finish_times: Sequence[float]) -> None:
        """Close any spans still open (crashed/killed threads) and pin
        the accounting to each processor's final clock."""
        for pid, finish in enumerate(finish_times):
            while self.stacks[pid]:
                self.pop(pid, finish)
            self._settle(pid, finish)
            self.finish[pid] = finish
        self.finalized = True

    # ------------------------------------------------------------------
    # Window readout
    # ------------------------------------------------------------------
    def window_buckets(self, pid: int) -> Dict[str, float]:
        base = self.baseline_buckets[pid]
        return {b: self.buckets[pid][b] - base.get(b, 0.0) for b in _BUCKETS}

    def window_measured(self, pid: int) -> float:
        return self.finish[pid] - self.baseline_clock[pid]

    def window_mech(self, pid: int) -> Dict[str, float]:
        base = self.baseline_mech[pid]
        return {k: self.mech[pid][k] - base.get(k, 0.0) for k in _MECH_KEYS}


@dataclass(frozen=True)
class ProcessorProfile:
    """One processor's measured window, decomposed."""

    pid: int
    #: finish clock minus clock at the opening of the measured window.
    measured: float
    #: Exclusive buckets; ``sum(buckets.values()) == measured`` exactly.
    buckets: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.buckets.values())


@dataclass(frozen=True)
class MechanismAttribution:
    """The paper's four-mechanism decomposition of TreadMarks stall time.

    ``separation`` is the remainder of data-stall time after the three
    measurable mechanisms: it is the baseline cost of fetching data at
    access-miss time instead of piggybacked on synchronization.
    """

    stall_data: float
    request_roundtrips: float
    accumulation: float
    false_sharing: float
    separation: float
    n_diff_requests: int = 0
    accum_bytes: int = 0
    false_bytes: int = 0


@dataclass
class RunProfile:
    """The full time-attribution readout for one parallel run."""

    system: str
    label: str
    nprocs: int
    processors: List[ProcessorProfile] = field(default_factory=list)
    mechanisms: Optional[MechanismAttribution] = None

    def bucket_totals(self) -> Dict[str, float]:
        totals = {b: 0.0 for b in _BUCKETS}
        for proc in self.processors:
            for bucket, value in proc.buckets.items():
                totals[bucket] += value
        return totals

    @property
    def measured(self) -> float:
        """The run's measured time (slowest processor)."""
        return max((p.measured for p in self.processors), default=0.0)


def build_profile(result: Any, label: str = "") -> RunProfile:
    """Assemble a :class:`RunProfile` from a finished parallel run.

    ``result`` is a :class:`repro.apps.base.ParallelResult` whose run
    had ``ObsConfig(profile=True)``; its ``profiler`` attribute holds
    the :class:`TimeProfiler`.  For TreadMarks runs that also attached
    the sanitizer with false-sharing tracking, diff bytes written by
    non-dominant writers are charged to false sharing.
    """
    profiler: Optional[TimeProfiler] = getattr(result, "profiler", None)
    if profiler is None:
        raise ValueError("run has no profiler; pass ObsConfig(profile=True)")
    if not profiler.finalized:
        raise ValueError("profiler not finalized; did the run complete?")
    procs = [
        ProcessorProfile(pid=pid, measured=profiler.window_measured(pid),
                         buckets=profiler.window_buckets(pid))
        for pid in range(profiler.nprocs)
    ]
    profile = RunProfile(system=result.system, label=label,
                         nprocs=profiler.nprocs, processors=procs)
    if result.system == "tmk":
        stall_data = sum(p.buckets.get("stall_data", 0.0) for p in procs)
        request_time = accum_time = 0.0
        n_requests = accum_bytes = 0
        for pid in range(profiler.nprocs):
            mech = profiler.window_mech(pid)
            request_time += mech["request_time"]
            accum_time += mech["accum_time"]
            n_requests += int(mech["diff_requests"])
            accum_bytes += int(mech["accum_bytes"])
        false_bytes = 0
        tracker = getattr(getattr(result, "sanitizer", None), "fs", None)
        if tracker is not None:
            false_bytes = tracker.total_false_bytes()
        cost = profiler.cost
        per_byte = (1.0 / cost.bandwidth + cost.diff_apply_byte_cpu
                    + cost.copy_byte_cpu)
        false_time = false_bytes * per_byte
        separation = stall_data - request_time - accum_time - false_time
        profile.mechanisms = MechanismAttribution(
            stall_data=stall_data,
            request_roundtrips=request_time,
            accumulation=accum_time,
            false_sharing=false_time,
            separation=max(0.0, separation),
            n_diff_requests=n_requests,
            accum_bytes=accum_bytes,
            false_bytes=false_bytes,
        )
    return profile


def _ms(t: float) -> str:
    return f"{t * 1e3:10.3f}"


def render_profile(profile: RunProfile) -> str:
    """Human-readable causal breakdown (times in milliseconds)."""
    lines: List[str] = []
    title = profile.label or f"{profile.system} x {profile.nprocs}"
    lines.append(f"time attribution: {title} [{profile.system}, "
                 f"{profile.nprocs} procs]")
    header = "  pid   measured" + "".join(f" {b:>10}" for b in _BUCKETS)
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for proc in profile.processors:
        row = f"  P{proc.pid:<3} {_ms(proc.measured)}"
        row += "".join(f" {_ms(proc.buckets[b])}" for b in _BUCKETS)
        lines.append(row)
    totals = profile.bucket_totals()
    grand = sum(p.measured for p in profile.processors)
    row = f"  sum  {_ms(grand)}"
    row += "".join(f" {_ms(totals[b])}" for b in _BUCKETS)
    lines.append(row)
    lines.append("  (all times in ms; buckets are exclusive and sum to "
                 "measured)")
    mech = profile.mechanisms
    if mech is not None:
        lines.append("")
        lines.append("  stall-on-data attribution (the paper's mechanisms):")
        lines.append(f"    total data stall      {_ms(mech.stall_data)} ms")
        lines.append(f"    sync/data separation  {_ms(mech.separation)} ms")
        lines.append(f"    diff-request trips    {_ms(mech.request_roundtrips)}"
                     f" ms  ({mech.n_diff_requests} requests)")
        lines.append(f"    false sharing         {_ms(mech.false_sharing)} ms"
                     f"  ({mech.false_bytes} diff bytes)")
        lines.append(f"    diff accumulation     {_ms(mech.accumulation)} ms"
                     f"  ({mech.accum_bytes} overlap bytes)")
    return "\n".join(lines)
