"""Chrome/Perfetto trace-event export.

Maps a :class:`~repro.obs.timeline.Timeline` onto the Chrome trace-
event JSON format (the ``{"traceEvents": [...]}`` object form), which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly:

* timeline ``B``/``E``/``X`` phases map one-to-one (Chrome uses the
  same letters); timeline ``I`` becomes a thread-scoped ``i`` instant;
* virtual seconds become microsecond ``ts``/``dur`` values;
* each simulated processor is one *thread* of a single *process*, so
  nested spans render as a flame graph per processor; network-level
  events (``pid == -1``) get their own track.

A ring-capped timeline can open with orphan ``E`` events (their ``B``
was dropped) or close with unmatched ``B`` events (a crashed thread's
spans); the exporter demotes the former to instants and synthesizes
closing ``E`` events for the latter, so the output always balances --
a property :func:`validate_chrome_trace` checks along with the schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.timeline import Timeline

__all__ = ["to_chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

#: Track id used for events that belong to no processor (network level).
_NET_TID = 1000

_VALID_PHASES = {"B", "E", "X", "i", "M"}


def _tid(pid: int) -> int:
    return _NET_TID if pid < 0 else pid


def to_chrome_trace(timeline: Timeline, label: str = "repro") -> Dict[str, Any]:
    """Render the timeline as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    open_spans: Dict[int, List[Dict[str, Any]]] = {}
    tids_seen: Dict[int, bool] = {}
    max_ts = 0.0
    for ev in timeline.events:
        tid = _tid(ev.pid)
        tids_seen[tid] = True
        ts = ev.time * 1e6
        max_ts = max(max_ts, ts + (ev.dur * 1e6 if ev.phase == "X" else 0.0))
        out: Dict[str, Any] = {
            "name": ev.kind,
            "cat": "sim",
            "ph": ev.phase,
            "ts": ts,
            "pid": 1,
            "tid": tid,
        }
        if ev.detail:
            out["args"] = {"detail": ev.detail}
        if ev.phase == "B":
            open_spans.setdefault(tid, []).append(out)
        elif ev.phase == "E":
            stack = open_spans.get(tid)
            if not stack:
                # Orphan end (its begin fell off the ring): demote to an
                # instant so the viewer still shows the edge.
                out["ph"] = "i"
                out["s"] = "t"
                out["name"] = out["name"] or "span_end"
            else:
                begun = stack.pop()
                # Chrome matches B/E by nesting, but a name makes the
                # slice readable in the Perfetto track list.
                out["name"] = begun["name"]
        elif ev.phase == "X":
            out["dur"] = ev.dur * 1e6
        elif ev.phase == "I":
            out["ph"] = "i"
            out["s"] = "t"
        events.append(out)
    # Close anything still open (crashed threads, truncated runs).
    for tid, stack in open_spans.items():
        for begun in reversed(stack):
            events.append({"name": begun["name"], "cat": "sim", "ph": "E",
                           "ts": max_ts, "pid": 1, "tid": tid})
    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0, "ts": 0,
        "args": {"name": label},
    }]
    for tid in sorted(tids_seen):
        name = "network" if tid == _NET_TID else f"P{tid}"
        meta.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                     "ts": 0, "args": {"name": name}})
        meta.append({"name": "thread_sort_index", "ph": "M", "pid": 1,
                     "tid": tid, "ts": 0, "args": {"sort_index": tid}})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro simulator", "dropped_events":
                      timeline.dropped_events},
    }


def write_chrome_trace(timeline: Timeline, path: str,
                       label: str = "repro") -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(timeline, label), fh, indent=1)


def validate_chrome_trace(obj: Any) -> List[str]:
    """Check ``obj`` against the Chrome trace-event schema.

    Returns a list of human-readable problems (empty = valid).  Covers
    the object form, the required per-event fields, phase-specific
    requirements (``dur`` on ``X``), and B/E balance per track.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    depth: Dict[Any, int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: missing non-negative 'ts'")
        if ph in ("B", "X", "i", "M") and not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs non-negative 'dur'")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: bad instant scope {ev.get('s')!r}")
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                errors.append(f"{where}: E without matching B on track "
                              f"{track}")
                depth[track] = 0
    for track, d in sorted(depth.items()):
        if d > 0:
            errors.append(f"track {track}: {d} unclosed B event(s)")
    return errors
