"""The observability facade the runtime layers talk to.

One :class:`Obs` per cluster, created when a :class:`ObsConfig` is
active.  The runtime layers (TreadMarks, PVM, the network) hold a
reference that is ``None`` when observability is off, so the
instrumented hot paths cost exactly one pointer test:

    obs = proc.obs
    if obs is not None:
        obs.begin(proc.now, pid, K_PAGE_FAULT, B_STALL_DATA, detail)

:class:`Obs` fans each call out to the :class:`~repro.obs.timeline.
Timeline` (event log) and the :class:`~repro.obs.profile.TimeProfiler`
(exclusive time buckets), whichever are enabled.  All state is host-
side: no call here ever advances virtual time, sends a message, or
touches the statistics, so enabling observability cannot perturb a
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs.profile import TimeProfiler
from repro.obs.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Processor

__all__ = [
    "BUCKETS",
    "B_COMPUTE",
    "B_PROTOCOL",
    "B_RECOVERY",
    "B_REPLICATION",
    "B_STALL_DATA",
    "B_STALL_SYNC",
    "B_WIRE",
    "Obs",
    "ObsConfig",
]

# ----------------------------------------------------------------------
# Exclusive time buckets (see DESIGN.md section 5e for definitions)
# ----------------------------------------------------------------------
B_COMPUTE = "compute"          #: application computation
B_WIRE = "wire"                #: sender-side CPU + occupancy putting bytes out
B_PROTOCOL = "protocol"        #: runtime-library CPU (service, twins, diffs,
#: pack/unpack)
B_STALL_SYNC = "stall_sync"    #: blocked on synchronization (locks, barriers)
B_STALL_DATA = "stall_data"    #: blocked on data (page faults, pvm_recv)
B_RECOVERY = "recovery"        #: checkpoint writes and rollback overhead
B_REPLICATION = "replication"  #: blocked on SC-ABD quorum reads/writes

BUCKETS = (B_COMPUTE, B_WIRE, B_PROTOCOL, B_STALL_SYNC, B_STALL_DATA,
           B_RECOVERY, B_REPLICATION)


@dataclass(frozen=True)
class ObsConfig:
    """What to observe (hashable: participates in run-cache keys)."""

    #: Record the span/instant event timeline.
    timeline: bool = False
    #: Attribute every virtual microsecond to an exclusive bucket.
    profile: bool = False
    #: Ring-buffer cap on the timeline (``None`` = unbounded).
    cap: Optional[int] = None

    @property
    def enabled(self) -> bool:
        return self.timeline or self.profile


class Obs:
    """Per-cluster observability state: timeline + profiler fan-out."""

    __slots__ = ("timeline", "profiler")

    def __init__(self, timeline: Optional[Timeline] = None,
                 profiler: Optional[TimeProfiler] = None) -> None:
        self.timeline = timeline
        self.profiler = profiler

    @classmethod
    def from_config(cls, config: ObsConfig, nprocs: int, cost) -> "Obs":
        timeline = (Timeline(enabled=True, cap=config.cap)
                    if config.timeline else None)
        profiler = TimeProfiler(nprocs, cost) if config.profile else None
        return cls(timeline=timeline, profiler=profiler)

    # ------------------------------------------------------------------
    # Span lifecycle (called from the owning processor's thread context)
    # ------------------------------------------------------------------
    def begin(self, time: float, pid: int, kind: str, bucket: str,
              detail: str = "") -> None:
        if self.profiler is not None:
            self.profiler.push(pid, kind, bucket, time)
        if self.timeline is not None:
            self.timeline.begin(time, pid, kind, detail)

    def end(self, time: float, pid: int) -> None:
        if self.profiler is not None:
            self.profiler.pop(pid, time)
        if self.timeline is not None:
            self.timeline.end(time, pid, "")

    # ------------------------------------------------------------------
    # Out-of-band events (handler context or network level)
    # ------------------------------------------------------------------
    def instant(self, time: float, pid: int, kind: str, detail: str = "") -> None:
        if self.timeline is not None:
            self.timeline.instant(time, pid, kind, detail)

    def serve(self, time: float, dur: float, pid: int, kind: str,
              detail: str = "") -> None:
        """A handler's service window (complete span, known duration)."""
        if self.timeline is not None:
            self.timeline.complete(time, dur, pid, kind, detail)

    def wire(self, time: float, dur: float, pid: int, detail: str = "") -> None:
        """One transmission's occupancy of the medium (send to arrival)."""
        if self.timeline is not None:
            self.timeline.complete(time, dur, pid, "wire", detail)

    # ------------------------------------------------------------------
    # Mechanism counters (paper section 5.2 causal analysis)
    # ------------------------------------------------------------------
    def note_diff_request(self, pid: int, request_bytes: int) -> None:
        if self.profiler is not None:
            self.profiler.note_diff_request(pid, request_bytes)

    def note_fetch_round(self, pid: int, total_bytes: int,
                         union_bytes: int) -> None:
        if self.profiler is not None:
            self.profiler.note_fetch_round(pid, total_bytes, union_bytes)

    # ------------------------------------------------------------------
    # Clock-advance hooks (installed in Processor's primitives)
    # ------------------------------------------------------------------
    def on_compute(self, pid: int, dt: float) -> None:
        if self.profiler is not None:
            self.profiler.on_advance(pid, dt)

    def on_set_now(self, pid: int, dt: float) -> None:
        if self.profiler is not None:
            self.profiler.on_advance(pid, dt)

    def on_service(self, pid: int, dt: float) -> None:
        if self.profiler is not None:
            self.profiler.on_service(pid, dt)

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def on_measurement_start(self, procs: Sequence["Processor"],
                             now: float = 0.0) -> None:
        """Snapshot the accounting at the opening of the measured window.

        ``now`` is the marking processor's clock -- the run-level window
        start; the other processors' own clocks (the per-processor
        baselines) may lag or lead it slightly.
        """
        if self.profiler is not None:
            self.profiler.mark([p.thread.clock if p.thread is not None else 0.0
                                for p in procs], now)
        if self.timeline is not None:
            self.timeline.instant(now, -1, "measure_start", "")

    def finalize(self, finish_times: Sequence[float]) -> None:
        """Close any spans left open (crashes, aborts) and settle the
        per-processor accounting so buckets sum to the final clocks."""
        if self.profiler is not None:
            self.profiler.finalize(finish_times)
